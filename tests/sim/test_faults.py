"""Tests for the fault-injection & recovery subsystem (`repro.sim.faults`).

Covers the fault layer from four sides:

* **Spec validation** — bad parameters, unknown drives/libraries, and the
  serial-fcfs incompatibility all error at ``OpenSystem.__init__`` time,
  before any simulation starts (satellite: validation moved out of
  ``Policy.bind``).
* **Recovery semantics** — repaired drives rejoin the pool and serve again
  (span evidence), pinned drives restore their batch-0 home tape, and the
  all-drives-failed scenario terminates with ``aborted`` requests instead
  of hanging (satellite bugfix).
* **Rescue edge cases** — failure mid-switch, failure between dispatch and
  pickup, simultaneous failures in one library, repair racing a pending
  rescue.
* **Determinism** — chaos runs are bit-identical for a fixed fault seed,
  across reruns and sweep worker counts.
"""

import math

import numpy as np
import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import ObjectProbabilityPlacement, ParallelBatchPlacement
from repro.sim import (
    DriveFailure,
    DriveFaultProcess,
    FaultInjector,
    RetryPolicy,
    RobotOutage,
    SimulationSession,
    TransientFaults,
    failures_to_specs,
    simulate_open_system,
)
from repro.sim.faults import _draw
from repro.workload import generate_workload


def _workload(**overrides):
    params = dict(
        num_objects=400,
        num_requests=25,
        request_size_bounds=(5, 12),
        object_size_bounds_mb=(10.0, 500.0),
        mean_object_size_mb=120.0,
        seed=21,
    )
    params.update(overrides)
    return generate_workload(**params)


def _spec(num_drives=4, num_tapes=12, num_libraries=2, tape_capacity_mb=10_000.0):
    return SystemSpec(
        num_libraries=num_libraries,
        library=LibrarySpec(
            num_drives=num_drives,
            num_tapes=num_tapes,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=tape_capacity_mb, max_rewind_s=10.0),
        ),
    )


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def spec():
    return _spec()


def _session(workload, spec, scheme=None):
    return SimulationSession(workload, spec, scheme=scheme or ParallelBatchPlacement(m=2))


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_capped_exponential_schedule(self):
        policy = RetryPolicy(max_retries=5, base_delay_s=2.0, multiplier=2.0, max_delay_s=10.0)
        assert policy.schedule() == (2.0, 4.0, 8.0, 10.0, 10.0)
        assert policy.delay_s(1) == 2.0
        assert policy.delay_s(100) == 10.0

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay_s(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"base_delay_s": 10.0, "max_delay_s": 5.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Spec validation at OpenSystem.__init__ (satellite: moved out of bind)
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_unknown_drive_in_legacy_map(self, workload, spec):
        with pytest.raises(ValueError, match="unknown drive"):
            _session(workload, spec).open(failures={"L9.D9": 10.0})

    def test_unknown_drive_in_fault_spec(self, workload, spec):
        with pytest.raises(ValueError, match="unknown drive"):
            _session(workload, spec).open(
                faults=(DriveFailure("L7.D7", at_s=5.0),)
            )

    def test_serial_fcfs_rejects_legacy_map(self, workload, spec):
        with pytest.raises(ValueError, match="concurrent"):
            _session(workload, spec).open(
                policy="serial-fcfs", failures={"L0.D0": 100.0}
            )

    def test_serial_fcfs_rejects_fault_specs(self, workload, spec):
        with pytest.raises(ValueError, match="concurrent"):
            _session(workload, spec).open(
                policy="serial-fcfs",
                faults=(DriveFaultProcess(mtbf_s=100.0, mttr_s=10.0),),
            )

    @pytest.mark.parametrize(
        "fault",
        [
            DriveFailure("L0.D0", at_s=-1.0),
            DriveFailure("L0.D0", at_s=1.0, repair_after_s=0.0),
            DriveFaultProcess(mtbf_s=0.0, mttr_s=10.0),
            DriveFaultProcess(mtbf_s=10.0, mttr_s=-1.0),
            DriveFaultProcess(mtbf_s=10.0, mttr_s=1.0, distribution="lognormal"),
            DriveFaultProcess(mtbf_s=10.0, mttr_s=1.0, distribution="weibull", shape=0.0),
            DriveFaultProcess(mtbf_s=10.0, mttr_s=1.0, drives=("L9.D9",)),
            RobotOutage(at_s=10.0, duration_s=0.0),
            RobotOutage(at_s=10.0, duration_s=5.0, library=9),
            TransientFaults(probability=1.5),
            TransientFaults(probability=0.5, operations=()),
            TransientFaults(probability=0.5, operations=("format",)),
            TransientFaults(probability=0.5, drives=("L9.D9",)),
        ],
    )
    def test_bad_specs_rejected_before_simulation(self, workload, spec, fault):
        with pytest.raises(ValueError):
            _session(workload, spec).open(faults=(fault,))

    def test_legacy_map_becomes_one_shot_specs(self):
        specs = failures_to_specs({"L0.D1": 30.0, "L0.D0": 10.0})
        assert specs == (
            DriveFailure("L0.D0", at_s=10.0),
            DriveFailure("L0.D1", at_s=30.0),
        )

    def test_no_faults_run_reports_full_availability(self, workload, spec):
        result = simulate_open_system(_session(workload, spec), 30.0, 10, seed=1)
        assert result.faults == {}
        assert result.availability == 1.0
        assert result.degraded_time_s == 0.0
        assert result.aborted_requests == 0


# ---------------------------------------------------------------------------
# Repair: drives rejoin the pool and serve again
# ---------------------------------------------------------------------------


class TestRepair:
    @pytest.fixture(scope="class")
    def repaired(self, workload, spec):
        session = _session(workload, spec)
        osys = session.open(
            faults=(DriveFailure("L0.D0", at_s=400.0, repair_after_s=600.0),)
        )
        return session, osys.run(60.0, num_arrivals=40, seed=4)

    def test_all_requests_complete(self, repaired):
        _, result = repaired
        assert len(result) == 40
        assert result.aborted_requests == 0

    def test_repaired_drive_serves_again(self, repaired):
        """Span evidence: the drive does real work after its repair."""
        _, result = repaired
        after_repair = [
            s
            for s in result.spans()
            if s.attrs.get("drive") == "L0.D0"
            and s.start > 1000.0
            and s.name in ("tape_job", "seek", "transfer", "load")
        ]
        assert after_repair

    def test_downtime_interval_recorded(self, repaired):
        _, result = repaired
        down = [s for s in result.spans() if s.name == "fault_drive_down"]
        assert len(down) == 1
        assert down[0].start == pytest.approx(400.0)
        assert down[0].end == pytest.approx(1000.0)
        assert down[0].attrs["drive"] == "L0.D0"

    def test_availability_books_match_the_interval(self, repaired):
        _, result = repaired
        total_drives = 8  # 2 libraries x 4 drives
        expected = 1.0 - 600.0 / (result.horizon_s * total_drives)
        assert result.availability == pytest.approx(expected)
        assert result.degraded_time_s == pytest.approx(600.0)
        assert result.faults["drive_failures"] == 1
        assert result.faults["drive_repairs"] == 1

    def test_drive_healthy_at_end(self, repaired):
        session, _ = repaired
        drive = session.system.libraries[0].drives[0]
        assert not drive.failed

    def test_pinned_drive_restores_home_tape(self, workload, spec):
        """Degraded parallel-batch mode ends: the repaired pinned drive
        remounts its batch-0 home tape (restore-on-repair)."""
        session = _session(workload, spec)
        drive = session.system.libraries[0].drives[0]
        assert drive.pinned and drive.mounted is not None
        home = drive.mounted.id
        osys = session.open(
            faults=(DriveFailure(str(drive.id), at_s=400.0, repair_after_s=600.0),)
        )
        result = osys.run(60.0, num_arrivals=40, seed=5)
        assert len(result) == 40
        assert not drive.failed
        assert drive.mounted is not None and drive.mounted.id == home


# ---------------------------------------------------------------------------
# All drives failed: aborted completion, never a hang (satellite bugfix)
# ---------------------------------------------------------------------------


class TestAbortedRequests:
    @pytest.fixture(scope="class")
    def all_dead(self, workload):
        spec = _spec(num_libraries=1, num_drives=2)
        session = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        )
        faults = tuple(
            DriveFailure(str(d.id), at_s=50.0)
            for d in session.system.libraries[0].drives
        )
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        return result

    def test_terminates_with_aborted_requests(self, all_dead):
        """The environment drains; requests fail instead of waiting forever."""
        assert len(all_dead) == 15
        assert all_dead.aborted_requests > 0

    def test_aborted_flag_propagates_everywhere(self, all_dead):
        aborted = [r for r in all_dead.records if r.aborted]
        assert len(aborted) == all_dead.aborted_requests
        for record, metrics in zip(all_dead.records, all_dead.metrics):
            assert metrics.aborted == record.aborted
            if record.aborted:
                assert metrics.response_s == pytest.approx(
                    record.sojourn_s, abs=1e-9
                )
        counter = all_dead.registry.counters["requests.aborted"]
        assert counter.value == all_dead.aborted_requests

    def test_aborted_tape_job_spans_tagged(self, all_dead):
        tagged = [
            s
            for s in all_dead.spans()
            if s.name == "tape_job" and s.attrs.get("aborted")
        ]
        assert tagged
        for span in tagged:
            assert "all drives failed" in span.attrs["error"]

    def test_availability_reflects_the_outage(self, all_dead):
        assert 0.0 < all_dead.availability < 1.0

    def test_submit_into_dead_library_aborts_immediately(self, workload):
        """Requests arriving after the last drive died fail on admission."""
        spec = _spec(num_libraries=1, num_drives=2)
        session = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        )
        faults = tuple(
            DriveFailure(str(d.id), at_s=1.0)
            for d in session.system.libraries[0].drives
        )
        result = session.open(faults=faults).run(10.0, num_arrivals=5, seed=0)
        assert len(result) == 5
        assert result.aborted_requests == 5

    def test_pending_repair_prevents_the_abort(self, workload):
        """Same outage, but one drive has a committed repair: queued jobs
        wait it out and complete instead of aborting."""
        spec = _spec(num_libraries=1, num_drives=2)
        session = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        )
        drives = [str(d.id) for d in session.system.libraries[0].drives]
        faults = (
            DriveFailure(drives[0], at_s=50.0),
            DriveFailure(drives[1], at_s=50.0, repair_after_s=300.0),
        )
        result = session.open(faults=faults).run(60.0, num_arrivals=10, seed=3)
        assert len(result) == 10
        assert result.aborted_requests == 0


# ---------------------------------------------------------------------------
# Rescue-path edge cases
# ---------------------------------------------------------------------------


class TestRescueEdgeCases:
    def _tight_session(self):
        """A switch-heavy setup: tapes too small to hold the hot set, so
        every drive regularly exchanges cartridges."""
        return SimulationSession(
            _workload(object_size_bounds_mb=(10.0, 300.0)),
            _spec(tape_capacity_mb=2_500.0),
            scheme=ObjectProbabilityPlacement(),
        )

    def _healthy_spans(self, seed=4):
        result = simulate_open_system(
            self._tight_session(), 120.0, num_arrivals=20, seed=seed
        )
        return result.spans()

    def _run_with_failure(self, at_s, repair_after_s=None, seed=4, drive="L0.D0"):
        session = self._tight_session()
        result = session.open(
            faults=(DriveFailure(drive, at_s=at_s, repair_after_s=repair_after_s),)
        ).run(120.0, num_arrivals=20, seed=seed)
        return session, result

    def test_failure_mid_switch(self):
        """Fail a drive exactly in the middle of one of its exchanges
        (timing up to the failure instant matches the healthy run, so the
        interrupt deterministically lands mid-switch)."""
        switches = [
            s
            for s in self._healthy_spans()
            if s.name in ("robot_exchange", "robot_fetch", "load", "unload")
            and str(s.attrs.get("drive", "")).startswith("L0.")
        ]
        assert switches, "healthy run never switched in library 0"
        target = switches[len(switches) // 2]
        drive_name = str(target.attrs["drive"])
        session, result = self._run_with_failure(
            drive=drive_name, at_s=(target.start + target.end) / 2
        )
        assert len(result) == 20
        assert result.aborted_requests == 0
        failed = session.system.libraries[0].drives[
            int(drive_name.split(".D")[1])
        ]
        assert failed.failed
        # The cartridge went back to its cell, not stuck in the dead drive.
        assert failed.mounted is None

    def test_failure_between_dispatch_and_pickup(self):
        """Fail the drive inside a job's dispatch-wait window (assigned but
        not yet started); the job must be rescued by the survivors."""
        waits = [
            s
            for s in self._healthy_spans()
            if s.name == "dispatch_wait"
            and str(s.attrs.get("drive", "")).startswith("L0.")
        ]
        assert waits, "healthy run had no dispatch waits in library 0"
        target = max(waits, key=lambda s: s.end - s.start)
        _, result = self._run_with_failure(
            drive=str(target.attrs["drive"]),
            at_s=(target.start + target.end) / 2,
        )
        assert len(result) == 20
        assert result.aborted_requests == 0

    def test_simultaneous_failures_one_library(self, workload, spec):
        """Two drives of one library die at the same instant; the two
        survivors (one of them pinned, forcing degraded mode for offline
        tapes) still finish every request."""
        session = _session(workload, spec)
        result = session.open(
            faults=(
                DriveFailure("L0.D0", at_s=500.0),
                DriveFailure("L0.D1", at_s=500.0),
                DriveFailure("L0.D2", at_s=500.0),
            )
        ).run(120.0, num_arrivals=20, seed=4)
        assert len(result) == 20
        assert result.aborted_requests == 0
        failed = [d for d in session.system.libraries[0].drives if d.failed]
        assert len(failed) == 3

    def test_double_failure_same_drive_same_instant(self, workload, spec):
        """Two specs hitting one drive at the same time fail it once; the
        repair belonging to the loser must not resurrect it."""
        session = _session(workload, spec)
        result = session.open(
            faults=(
                DriveFailure("L0.D0", at_s=500.0),
                DriveFaultProcess(mtbf_s=500.0, mttr_s=100.0, drives=("L0.D0",)),
            ),
            fault_seed=1,
        ).run(120.0, num_arrivals=20, seed=4)
        assert len(result) == 20
        assert result.faults["drive_failures"] >= 1
        # Books stay balanced: every repair matches a failure we caused.
        assert result.faults["drive_repairs"] <= result.faults["drive_failures"]

    def test_repair_races_pending_rescue(self, workload, spec):
        """A quick repair lands while the failed drive's orphaned job is
        still queued for rescue; both the repaired drive and the survivors
        may serve it, and nothing is served twice."""
        healthy = simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=20, seed=4
        )
        session = _session(workload, spec)
        result = session.open(
            faults=(
                DriveFailure(
                    "L0.D0", at_s=healthy.horizon_s / 4, repair_after_s=10.0
                ),
            )
        ).run(120.0, num_arrivals=20, seed=4)
        assert len(result) == 20
        assert result.aborted_requests == 0
        assert sum(m.size_mb for m in result.metrics) == pytest.approx(
            sum(m.size_mb for m in healthy.metrics)
        )
        assert not session.system.libraries[0].drives[0].failed


# ---------------------------------------------------------------------------
# Transient errors: retry with backoff, then escalation
# ---------------------------------------------------------------------------


class TestTransientFaults:
    def test_retries_recorded_with_backoff_spans(self, workload, spec):
        retry = RetryPolicy(max_retries=6, base_delay_s=3.0, multiplier=2.0, max_delay_s=48.0)
        session = _session(workload, spec)
        result = session.open(
            faults=(TransientFaults(probability=0.3, retry=retry),),
            fault_seed=11,
        ).run(60.0, num_arrivals=15, seed=2)
        assert len(result) == 15
        assert result.faults["transient_errors"] > 0
        assert result.faults["retries"] == result.faults["transient_errors"]
        assert result.faults["escalations"] == 0
        backoffs = [s for s in result.spans() if s.name == "fault_transient"]
        assert len(backoffs) == result.faults["retries"]
        for span in backoffs:
            attempt = span.attrs["attempt"]
            assert span.end - span.start == pytest.approx(retry.delay_s(attempt))
            assert span.attrs["operation"] in ("mount", "read")

    def test_exhausted_retries_escalate_to_hard_failure(self, workload):
        """probability=1.0 exhausts every retry budget: drives escalate to
        permanent hard failures and the stream ends aborted, not hung."""
        spec = _spec(num_libraries=1, num_drives=2)
        session = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        )
        result = session.open(
            faults=(
                TransientFaults(
                    probability=1.0,
                    retry=RetryPolicy(max_retries=2, base_delay_s=1.0),
                ),
            ),
            fault_seed=5,
        ).run(60.0, num_arrivals=10, seed=1)
        assert len(result) == 10
        assert result.faults["escalations"] == 2  # both drives died
        assert result.aborted_requests > 0
        assert all(d.failed for d in session.system.libraries[0].drives)

    def test_zero_probability_changes_nothing(self, workload, spec):
        baseline = simulate_open_system(
            _session(workload, spec), 60.0, num_arrivals=15, seed=2
        )
        gated = _session(workload, spec).open(
            faults=(TransientFaults(probability=0.0),)
        ).run(60.0, num_arrivals=15, seed=2)
        assert [r.finish_s for r in gated.records] == [
            r.finish_s for r in baseline.records
        ]
        assert gated.faults["transient_errors"] == 0


# ---------------------------------------------------------------------------
# Robot outages
# ---------------------------------------------------------------------------


class TestRobotOutage:
    def test_outage_stalls_exchanges_library_wide(self, workload, spec):
        baseline = simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=20, seed=4
        )
        result = _session(workload, spec).open(
            faults=(RobotOutage(at_s=300.0, duration_s=1800.0, library=0),)
        ).run(120.0, num_arrivals=20, seed=4)
        assert len(result) == 20
        assert result.faults["robot_outages"] == 1
        outages = [s for s in result.spans() if s.name == "fault_robot_outage"]
        assert len(outages) == 1
        assert outages[0].end - outages[0].start == pytest.approx(1800.0)
        assert outages[0].attrs["library"] == 0
        # Exchanges stalled behind the jam: the stream cannot finish faster.
        assert result.mean_sojourn_s >= baseline.mean_sojourn_s

    def test_outage_without_library_jams_all_arms(self, workload, spec):
        result = _session(workload, spec).open(
            faults=(RobotOutage(at_s=300.0, duration_s=600.0),)
        ).run(120.0, num_arrivals=20, seed=4)
        outages = [s for s in result.spans() if s.name == "fault_robot_outage"]
        assert {s.attrs["library"] for s in outages} == {0, 1}


# ---------------------------------------------------------------------------
# Stochastic fail/repair processes: distributions and determinism
# ---------------------------------------------------------------------------


class TestChaosRuns:
    def _chaos(self, workload, spec, distribution="exponential", shape=1.0, fault_seed=7):
        session = _session(workload, spec)
        return session.open(
            faults=(
                DriveFaultProcess(
                    mtbf_s=1500.0,
                    mttr_s=300.0,
                    distribution=distribution,
                    shape=shape,
                ),
            ),
            fault_seed=fault_seed,
        ).run(60.0, num_arrivals=25, seed=1)

    def test_chaos_run_completes_with_recoveries(self, workload, spec):
        result = self._chaos(workload, spec)
        assert len(result) == 25
        assert result.faults["drive_failures"] > 0
        assert result.faults["drive_repairs"] > 0
        assert 0.0 < result.availability <= 1.0

    def test_bit_identical_across_reruns(self, workload, spec):
        a = self._chaos(workload, spec)
        b = self._chaos(workload, spec)
        assert [r.finish_s for r in a.records] == [r.finish_s for r in b.records]
        assert [r.aborted for r in a.records] == [r.aborted for r in b.records]
        assert a.faults == b.faults

    def test_fault_seed_decorrelates_fault_timing(self, workload, spec):
        a = self._chaos(workload, spec, fault_seed=7)
        b = self._chaos(workload, spec, fault_seed=8)
        assert [r.finish_s for r in a.records] != [r.finish_s for r in b.records]

    def test_weibull_chaos_runs(self, workload, spec):
        result = self._chaos(workload, spec, distribution="weibull", shape=1.5)
        assert len(result) == 25
        assert result.faults["drive_failures"] > 0

    def test_weibull_draws_have_the_configured_mean(self):
        rng = np.random.default_rng(0)
        draws = [_draw(rng, "weibull", 100.0, 1.5) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.05)
        scale = 100.0 / math.gamma(1 + 1 / 1.5)
        assert max(draws) < scale * 10

    def test_recurring_processes_stand_down_and_rearm(self, workload, spec):
        """A continuation run re-arms the fault processes on the same
        substreams, and no drive leaks into it failed."""
        session = _session(workload, spec)
        osys = session.open(
            faults=(DriveFaultProcess(mtbf_s=1500.0, mttr_s=300.0),),
            fault_seed=7,
        )
        first = osys.run(60.0, num_arrivals=15, seed=1)
        assert all(
            not d.failed for lib in session.system.libraries for d in lib.drives
        )
        second = osys.run(60.0, num_arrivals=15, seed=2, reset=False)
        assert len(second) == 15
        assert second.faults["drive_failures"] >= first.faults["drive_failures"]

    def test_sweep_chaos_points_identical_across_worker_counts(self, workload):
        """The acceptance criterion: chaos results are bit-identical for
        any worker count (per-point fault seeds derive from point seeds)."""
        from repro.experiments import EngineOptions, PointSpec, SweepSpec, run_sweep
        from repro.workload import WorkloadParams

        params = WorkloadParams(
            num_objects=300,
            num_requests=20,
            request_size_bounds=(4, 8),
            object_size_bounds_mb=(10.0, 300.0),
            mean_object_size_mb=100.0,
            seed=13,
        )
        points = tuple(
            PointSpec(
                sweep="chaos-smoke",
                axis="mtbf_h",
                value=mtbf,
                scheme="parallel_batch",
                scheme_kwargs=(("m", 2),),
                workload=params,
                spec=_spec(),
                kind="chaos",
                run_kwargs=(
                    ("mtbf_h", mtbf),
                    ("mttr_h", 0.1),
                    ("num_arrivals", 10),
                    ("policy", "concurrent"),
                    ("rate_per_hour", 30.0),
                ),
            )
            for mtbf in (0.5, 2.0)
        )
        spec_obj = SweepSpec(name="chaos-smoke", points=points, root_seed=3)
        serial = run_sweep(spec_obj, EngineOptions(workers=1))
        fanned = run_sweep(spec_obj, EngineOptions(workers=2))
        for a, b in zip(serial, fanned):
            assert [r.finish_s for r in a.result.records] == [
                r.finish_s for r in b.result.records
            ]
            assert a.result.faults == b.result.faults


# ---------------------------------------------------------------------------
# The injector's bookkeeping
# ---------------------------------------------------------------------------


class TestInjectorAccounting:
    def test_summary_without_downtime(self, workload, spec):
        """Armed-but-idle faults (astronomical MTBF): perfect availability,
        and the recurring processes stand down when the stream drains."""
        session = _session(workload, spec)
        osys = session.open(
            faults=(DriveFaultProcess(mtbf_s=1e12, mttr_s=10.0),), fault_seed=0
        )
        result = osys.run(60.0, num_arrivals=5, seed=1)
        assert result.availability == 1.0
        assert result.faults["drive_failures"] == 0
        assert result.faults["downtime_s"] == 0.0

    def test_injector_requires_concurrent_dispatchers(self, workload, spec):
        session = _session(workload, spec)
        osys = session.open(faults=(DriveFailure("L0.D0", at_s=100.0),))
        assert isinstance(osys.injector, FaultInjector)
        assert osys.injector.specs == (DriveFailure("L0.D0", at_s=100.0),)

    def test_open_interval_folded_at_horizon(self, workload, spec):
        """A permanently dead drive's downtime is charged up to the horizon
        (open interval folded in finalize())."""
        session = _session(workload, spec)
        result = session.open(
            faults=(DriveFailure("L0.D0", at_s=100.0),)
        ).run(60.0, num_arrivals=10, seed=1)
        expected_down = result.horizon_s - 100.0
        assert result.faults["downtime_s"] == pytest.approx(expected_down)
        down = [s for s in result.spans() if s.name == "fault_drive_down"]
        assert len(down) == 1
        assert down[0].attrs.get("open") is True


# ---------------------------------------------------------------------------
# Redundancy x faults: choice-of-d fallback across failed drives
# ---------------------------------------------------------------------------


class TestRedundantFaultInteraction:
    """r=2 turns whole-library outages into fallbacks, not aborts.

    With one replica's library dead, every request must complete via the
    surviving copy; with *every* member dead, the request aborts exactly
    as a non-redundant run would.
    """

    def _session(self, workload, redundancy=None):
        from repro.redundancy import wrap_scheme

        scheme = ObjectProbabilityPlacement()
        if redundancy:
            scheme = wrap_scheme(scheme, redundancy)
        return SimulationSession(workload, _spec(num_drives=2), scheme=scheme)

    def _kill_library(self, session, library, at_s=1.0):
        return tuple(
            DriveFailure(str(d.id), at_s=at_s)
            for d in session.system.libraries[library].drives
        )

    def test_one_dead_replica_library_completes_unaborted(self, workload):
        session = self._session(workload, "r=2")
        faults = self._kill_library(session, 0)
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        assert len(result) == 15
        assert result.aborted_requests == 0
        counters = result.registry.counters
        assert counters["redundancy.requests"].value == 15
        assert counters["redundancy.fallbacks"].value > 0
        assert counters["redundancy.unservable"].value == 0

    def test_same_outage_aborts_without_redundancy(self, workload):
        """The control: the base scheme under the identical outage loses
        requests — completing them above is the redundancy layer's doing."""
        session = self._session(workload)
        faults = self._kill_library(session, 0)
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        assert result.aborted_requests > 0

    def test_all_replicas_dead_aborts_like_today(self, workload):
        base = self._session(workload)
        base_result = base.open(
            faults=self._kill_library(base, 0) + self._kill_library(base, 1)
        ).run(60.0, num_arrivals=15, seed=3)

        session = self._session(workload, "r=2")
        faults = self._kill_library(session, 0) + self._kill_library(session, 1)
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        assert len(result) == 15
        assert result.aborted_requests == base_result.aborted_requests
        assert result.aborted_requests == 15
        assert result.registry.counters["redundancy.unservable"].value > 0

    def test_fallback_digest_records_served_requests(self, workload):
        session = self._session(workload, "r=2")
        faults = self._kill_library(session, 0)
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        digest = result.registry.digests["replica_fallbacks"]
        assert digest.count == 15

    def test_repaired_replica_rejoins_dispatch(self, workload):
        """A failed-then-repaired library is routable again: the run still
        completes everything with both member sets exercised."""
        session = self._session(workload, "r=2")
        faults = tuple(
            DriveFailure(str(d.id), at_s=50.0, repair_after_s=400.0)
            for d in session.system.libraries[0].drives
        )
        result = session.open(faults=faults).run(60.0, num_arrivals=15, seed=3)
        assert len(result) == 15
        assert result.aborted_requests == 0
