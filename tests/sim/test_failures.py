"""Tests for injected drive failures and rescue rescheduling."""

import pytest

from repro.catalog import LocationIndex, Request
from repro.des import Trace
from repro.hardware import (
    DriveSpec,
    LibrarySpec,
    ObjectExtent,
    SystemSpec,
    TapeId,
    TapeSpec,
    TapeSystem,
)
from repro.sim import simulate_request


def make_system(num_drives=2):
    spec = SystemSpec(
        num_libraries=1,
        library=LibrarySpec(
            num_drives=num_drives,
            num_tapes=6,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0),
        ),
    )
    return TapeSystem(spec)


class TestDriveFailure:
    def test_failure_mid_transfer_reroutes_work(self):
        """Drive 0 dies 5 s into a 20 s transfer; drive 1 rescues the tape
        and re-reads the extent from scratch."""
        system = make_system()
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 200.0)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)

        m = simulate_request(
            system, index, Request(0, (1,), 1.0), failures={"L0.D0": 5.0}
        )
        # All bytes still delivered.
        assert m.size_mb == pytest.approx(200.0)
        # Rescue path: failure at 5, drive 1 fetches (robot 2 + load 5) and
        # re-reads the full 20 s extent -> 5 + 7 + 20 = 32 s.
        assert m.response_s == pytest.approx(32.0)
        assert lib.drives[0].failed
        assert lib.drives[0].mounted is None  # cartridge pulled
        assert lib.drives[1].mounted.id == TapeId(0, 0)

    def test_failure_after_completion_changes_nothing(self):
        system = make_system()
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 100.0)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        m = simulate_request(
            system, index, Request(0, (1,), 1.0), failures={"L0.D0": 500.0}
        )
        assert m.response_s == pytest.approx(10.0)
        assert not lib.drives[0].failed  # watchdog found the process done

    def test_partial_job_requeues_only_leftovers(self):
        """Two extents; the first completes before the failure — only the
        second is re-read by the rescuer."""
        system = make_system()
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout(
            [ObjectExtent(1, 0, 100.0), ObjectExtent(2, 100.0, 100.0)]
        )
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        trace = Trace()
        m = simulate_request(
            system, index, Request(0, (1, 2), 1.0),
            failures={"L0.D0": 15.0}, trace=trace,
        )
        assert m.size_mb == pytest.approx(200.0)
        # Extent 1 transferred once; extent 2 started on D0 and re-read on D1.
        reads = [(s.attrs["drive"], s.attrs["object"]) for s in trace.spans("transfer")]
        assert ("L0.D0", 1) in reads
        assert ("L0.D1", 2) in reads
        assert ("L0.D1", 1) not in reads

    def test_failed_drive_excluded_from_next_request(self):
        system = make_system()
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 100.0)])
        lib.tape(TapeId(0, 1)).write_layout([ObjectExtent(2, 0, 100.0)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        simulate_request(system, index, Request(0, (1,), 1.0), failures={"L0.D0": 2.0})
        assert lib.drives[0].failed
        # Next request is served entirely by the surviving drive.
        m = simulate_request(system, index, Request(1, (2,), 1.0))
        assert m.size_mb == pytest.approx(100.0)
        assert lib.drives[1].mounted.id == TapeId(0, 1)

    def test_all_drives_failed_raises(self):
        system = make_system(num_drives=1)
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 200.0)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        with pytest.raises(RuntimeError, match="no surviving"):
            simulate_request(
                system, index, Request(0, (1,), 1.0), failures={"L0.D0": 5.0}
            )

    def test_reset_clears_failed_state(self):
        system = make_system()
        system.library(0).drives[0].failed = True
        system.reset_runtime_state()
        assert not system.library(0).drives[0].failed

    def test_failure_recorded_in_trace(self):
        system = make_system()
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 200.0)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        trace = Trace()
        simulate_request(
            system, index, Request(0, (1,), 1.0),
            failures={"L0.D0": 5.0}, trace=trace,
        )
        assert len(trace.spans("drive_failure", drive="L0.D0")) == 1


class TestDegradedSession:
    def test_fail_drives_degrades_but_serves(self):
        from repro.experiments import ExperimentSettings, paper_workload
        from repro.placement import ParallelBatchPlacement
        from repro.sim import SimulationSession

        settings = ExperimentSettings(scale="small", num_samples=15)
        workload = paper_workload(settings)
        session = SimulationSession(
            workload, settings.spec(), scheme=ParallelBatchPlacement(m=4)
        )
        healthy = session.evaluate(num_samples=15, seed=8)
        session.reset()
        session.fail_drives(["L0.D7", "L1.D7", "L2.D7"])
        degraded = session.evaluate(num_samples=15, seed=8, reset=False)
        # Same bytes served, slower.
        assert degraded.avg_request_size_mb == pytest.approx(healthy.avg_request_size_mb)
        assert degraded.avg_response_s >= healthy.avg_response_s * 0.999

    def test_failed_pinned_drive_content_served_via_switches(self):
        from repro.experiments import ExperimentSettings, paper_workload
        from repro.placement import ParallelBatchPlacement
        from repro.sim import SimulationSession

        settings = ExperimentSettings(scale="small", num_samples=10)
        workload = paper_workload(settings)
        session = SimulationSession(
            workload, settings.spec(), scheme=ParallelBatchPlacement(m=4)
        )
        session.fail_drives(["L0.D0"])  # a pinned (batch-0) drive
        result = session.evaluate(num_samples=10, seed=8, reset=False)
        assert len(result) == 10
        for m in result.samples:
            request = workload.requests[m.request_id]
            assert m.size_mb == pytest.approx(request.total_size_mb(workload.catalog))

    def test_unknown_drive_name_rejected(self):
        from repro.experiments import ExperimentSettings, paper_workload
        from repro.placement import ObjectProbabilityPlacement
        from repro.sim import SimulationSession

        settings = ExperimentSettings(scale="small")
        workload = paper_workload(settings)
        session = SimulationSession(
            workload, settings.spec(), scheme=ObjectProbabilityPlacement()
        )
        with pytest.raises(ValueError, match="unknown drive"):
            session.fail_drives(["L9.D9"])

    def test_reset_restores_health(self):
        from repro.experiments import ExperimentSettings, paper_workload
        from repro.placement import ObjectProbabilityPlacement
        from repro.sim import SimulationSession

        settings = ExperimentSettings(scale="small")
        workload = paper_workload(settings)
        session = SimulationSession(
            workload, settings.spec(), scheme=ObjectProbabilityPlacement()
        )
        session.fail_drives(["L0.D0"])
        session.reset()
        assert not session.system.library(0).drives[0].failed
