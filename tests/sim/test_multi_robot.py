"""Tests for the multi-robot what-if extension (paper assumption 5 relaxed)."""


import pytest

from repro.catalog import LocationIndex, Request
from repro.hardware import (
    DriveSpec,
    LibrarySpec,
    ObjectExtent,
    SystemSpec,
    TapeId,
    TapeSpec,
    TapeSystem,
)
from repro.sim import simulate_request


def make_system(num_robots):
    spec = SystemSpec(
        num_libraries=1,
        library=LibrarySpec(
            num_drives=2,
            num_tapes=4,
            cell_to_drive_s=2.0,
            num_robots=num_robots,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0),
        ),
    )
    system = TapeSystem(spec)
    lib = system.library(0)
    lib.tape(TapeId(0, 2)).write_layout([ObjectExtent(1, 0, 100.0)])
    lib.tape(TapeId(0, 3)).write_layout([ObjectExtent(2, 0, 100.0)])
    return system, LocationIndex.from_system(system)


def test_spec_validates_num_robots():
    with pytest.raises(ValueError):
        LibrarySpec(num_robots=0)


def test_single_robot_serializes_mounts():
    system, index = make_system(num_robots=1)
    m = simulate_request(system, index, Request(0, (1, 2), 1.0))
    # drive A: robot [0,7], xfer [7,17]; drive B: robot [7,14], xfer [14,24]
    assert m.response_s == pytest.approx(24.0)


def test_two_robots_mount_in_parallel():
    system, index = make_system(num_robots=2)
    m = simulate_request(system, index, Request(0, (1, 2), 1.0))
    # both drives: robot [0,7], xfer [7,17]
    assert m.response_s == pytest.approx(17.0)


def test_extra_robots_beyond_switches_change_nothing():
    two, idx2 = make_system(num_robots=2)
    four, idx4 = make_system(num_robots=4)
    r2 = simulate_request(two, idx2, Request(0, (1, 2), 1.0))
    r4 = simulate_request(four, idx4, Request(0, (1, 2), 1.0))
    assert r2.response_s == pytest.approx(r4.response_s)
