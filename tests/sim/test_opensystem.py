"""Tests for the persistent open-system engine (`repro.sim.opensystem`).

Covers the refactor's contract from three sides:

* **Regression** — the closed-loop wrappers (`session.evaluate`,
  `simulate_fcfs_queue`) still produce the pre-refactor numbers, and the
  ``serial-fcfs`` policy reproduces `simulate_fcfs_queue` record-for-record
  on the shared clock.
* **Concurrency invariants** — the robot arm is never held by two drives at
  once, the disk-stream cap is never exceeded, a cartridge is never in two
  drives, and the concurrent policy never loses to serial FCFS.
* **Instrumentation** — windowed metrics, in-flight profile, and the
  overlap-aware `QueueingResult` aggregates.
"""

import hashlib

import numpy as np
import pytest

from repro.des import trace_enabled_by_env
from repro.hardware import DriveSpec, LibrarySpec, ObjectExtent, SystemSpec, TapeId, TapeSpec
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
)
from repro.sim import (
    DriveFaultProcess,
    OpenSystem,
    QueuedRequestRecord,
    QueueingResult,
    SimulationSession,
    TapeJob,
    TransientFaults,
    available_scheduling_policies,
    in_flight_profile,
    simulate_fcfs_queue,
    simulate_open_system,
    sliding_window_stats,
)
from repro.workload import generate_workload


def _workload(**overrides):
    params = dict(
        num_objects=400,
        num_requests=25,
        request_size_bounds=(5, 12),
        object_size_bounds_mb=(10.0, 500.0),
        mean_object_size_mb=120.0,
        seed=21,
    )
    params.update(overrides)
    return generate_workload(**params)


def _spec(
    num_drives=4,
    num_tapes=12,
    num_libraries=2,
    disk_bandwidth_mb_s=None,
    tape_capacity_mb=10_000.0,
):
    return SystemSpec(
        num_libraries=num_libraries,
        disk_bandwidth_mb_s=disk_bandwidth_mb_s,
        library=LibrarySpec(
            num_drives=num_drives,
            num_tapes=num_tapes,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=tape_capacity_mb, max_rewind_s=10.0),
        ),
    )


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def spec():
    return _spec()


def _session(workload, spec, scheme=None):
    return SimulationSession(workload, spec, scheme=scheme or ParallelBatchPlacement(m=2))


# ---------------------------------------------------------------------------
# Regression: the refactor must not move the closed-loop numbers
# ---------------------------------------------------------------------------


class TestClosedLoopRegression:
    """`session.evaluate()` golden values captured before the refactor."""

    GOLDEN_AVG_RESPONSE_S = [
        (ParallelBatchPlacement(m=2), 55.402534371552925),
        (ObjectProbabilityPlacement(), 44.743189844267576),
        (ClusterProbabilityPlacement(), 83.95834191883735),
    ]

    @pytest.mark.parametrize(
        "scheme,golden", GOLDEN_AVG_RESPONSE_S, ids=lambda v: getattr(v, "name", "")
    )
    def test_evaluate_unchanged(self, workload, spec, scheme, golden):
        session = _session(workload, spec, scheme=scheme)
        result = session.evaluate(num_samples=30, seed=5)
        assert result.avg_response_s == pytest.approx(golden, rel=1e-12)


class TestSerialFcfsRegression:
    """serial-fcfs on the shared clock == the closed-loop FCFS queue."""

    def test_matches_simulate_fcfs_queue_record_for_record(self, workload, spec):
        closed = simulate_fcfs_queue(
            _session(workload, spec), 30.0, num_arrivals=25, seed=7
        )
        opened = simulate_open_system(
            _session(workload, spec), 30.0, num_arrivals=25, seed=7,
            policy="serial-fcfs",
        )
        assert opened.policy == "serial-fcfs"
        assert len(opened) == len(closed)
        for a, b in zip(opened.records, closed.records):
            assert a.request_id == b.request_id
            assert a.arrival_s == pytest.approx(b.arrival_s)
            # Absolute-clock arithmetic differs in the last ulp only.
            assert a.start_s == pytest.approx(b.start_s, rel=1e-9)
            assert a.finish_s == pytest.approx(b.finish_s, rel=1e-9)
        assert opened.mean_sojourn_s == pytest.approx(closed.mean_sojourn_s, rel=1e-9)

    def test_serial_services_never_overlap(self, workload, spec):
        result = simulate_open_system(
            _session(workload, spec), 60.0, num_arrivals=20, seed=3,
            policy="serial-fcfs",
        )
        by_start = sorted(result.records, key=lambda r: r.start_s)
        for prev, cur in zip(by_start, by_start[1:]):
            assert cur.start_s >= prev.finish_s - 1e-9

    def test_rejects_failure_injection(self, workload, spec):
        session = _session(workload, spec)
        with pytest.raises(ValueError, match="concurrent"):
            session.open(policy="serial-fcfs", failures={"L0.D0": 100.0})


# ---------------------------------------------------------------------------
# The concurrent policy
# ---------------------------------------------------------------------------


class TestConcurrentPolicy:
    def test_never_loses_to_serial(self, workload, spec):
        serial = simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=40, seed=7,
            policy="serial-fcfs",
        )
        concurrent = simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=40, seed=7,
            policy="concurrent",
        )
        assert concurrent.mean_sojourn_s <= serial.mean_sojourn_s * 1.02
        # At this offered load with 2 libraries the win must be strict.
        assert concurrent.mean_sojourn_s < serial.mean_sojourn_s
        assert concurrent.peak_in_flight >= 2

    def test_all_bytes_served(self, workload, spec):
        result = simulate_open_system(
            _session(workload, spec), 60.0, num_arrivals=15, seed=1
        )
        assert len(result.metrics) == 15
        for record, metrics in zip(result.records, result.metrics):
            assert record.request_id == metrics.request_id
            assert record.size_mb == pytest.approx(metrics.size_mb)
            assert metrics.size_mb > 0
            # Open-system response is the sojourn: arrival -> last byte.
            assert metrics.response_s == pytest.approx(record.sojourn_s, rel=1e-9)

    def test_low_load_matches_serial(self, workload, spec):
        """With arrivals far apart there is no overlap to exploit: both
        policies serve an idle system and agree on every sojourn."""
        serial = simulate_open_system(
            _session(workload, spec), 0.5, num_arrivals=10, seed=2,
            policy="serial-fcfs",
        )
        concurrent = simulate_open_system(
            _session(workload, spec), 0.5, num_arrivals=10, seed=2,
            policy="concurrent",
        )
        assert concurrent.peak_in_flight == 1
        assert concurrent.mean_sojourn_s == pytest.approx(
            serial.mean_sojourn_s, rel=1e-6
        )

    def test_reproducible(self, workload, spec):
        a = simulate_open_system(_session(workload, spec), 60.0, 20, seed=9)
        b = simulate_open_system(_session(workload, spec), 60.0, 20, seed=9)
        assert [r.finish_s for r in a.records] == [r.finish_s for r in b.records]


class TestConcurrentFailures:
    def test_drive_failure_is_rescued(self, workload, spec):
        """Failing a drive mid-stream loses no request: survivors rescue."""
        healthy = simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=20, seed=4
        )
        failures = {"L0.D0": healthy.horizon_s / 4, "L0.D1": healthy.horizon_s / 2}
        session = _session(workload, spec)
        result = simulate_open_system(
            session, 120.0, num_arrivals=20, seed=4, failures=failures
        )
        assert len(result) == 20
        for drive in session.system.libraries[0].drives:
            if str(drive.id) in failures:
                assert drive.failed
        # Same bytes served despite the failures.
        assert sum(m.size_mb for m in result.metrics) == pytest.approx(
            sum(m.size_mb for m in healthy.metrics)
        )
        assert result.mean_sojourn_s >= healthy.mean_sojourn_s

    def test_unknown_drive_name_rejected(self, workload, spec):
        with pytest.raises(ValueError, match="unknown drive"):
            _session(workload, spec).open(failures={"L9.D9": 10.0})


# ---------------------------------------------------------------------------
# Concurrency invariants on the physical resources
# ---------------------------------------------------------------------------


def _starved_session():
    """A drive-starved system: small tapes spread even the popular objects
    across many cartridges while only two drives serve each library, so
    every request forces tape switches and the robot arm and the
    displacement logic are genuinely contended."""
    workload = _workload(
        num_objects=600, request_size_bounds=(8, 16), mean_object_size_mb=None
    )
    spec = _spec(
        num_drives=2, num_tapes=40, disk_bandwidth_mb_s=20.0,
        tape_capacity_mb=2_000.0,
    )
    return SimulationSession(workload, spec, scheme=ObjectProbabilityPlacement())


class TestResourceInvariants:
    @pytest.fixture(scope="class")
    def starved(self):
        return _starved_session()

    @pytest.fixture(scope="class")
    def starved_result(self, starved):
        return simulate_open_system(starved, 240.0, num_arrivals=30, seed=11)

    def test_switches_actually_happen(self, starved_result):
        assert sum(m.num_switches for m in starved_result.metrics) > 0

    def test_robot_never_held_twice(self, starved_result):
        for name, stats in starved_result.resources.items():
            if name.endswith(".robot"):
                assert stats["grants"] > 0
                assert stats["max_in_use"] <= 1
                assert stats["busy_s"] <= starved_result.horizon_s

    def test_disk_stream_cap_respected(self, starved, starved_result):
        cap = starved.spec.disk_streams
        assert cap == 2
        disk = starved_result.resources["disk"]
        assert disk["max_in_use"] <= cap
        # The slot-time integral can exceed single-resource busy time only
        # through genuine multi-stream overlap, and never beyond the cap.
        assert disk["slot_busy_s"] <= cap * starved_result.horizon_s
        assert starved_result.resource_utilization("disk", capacity=cap) <= 1.0

    def test_cartridge_exists_once(self, starved, starved_result):
        """After draining, every tape is mounted in at most one drive."""
        seen = {}
        for library in starved.system.libraries:
            for drive in library.drives:
                if drive.mounted is not None:
                    assert drive.mounted.id not in seen
                    seen[drive.mounted.id] = drive.id


# ---------------------------------------------------------------------------
# OpenSystem lifecycle and validation
# ---------------------------------------------------------------------------


class TestOpenSystemLifecycle:
    def test_policies_registered(self):
        assert available_scheduling_policies() == ("concurrent", "serial-fcfs")

    def test_unknown_policy(self, workload, spec):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            _session(workload, spec).open(policy="shortest-job-first")

    def test_validates_run_args(self, workload, spec):
        osys = _session(workload, spec).open()
        with pytest.raises(ValueError):
            osys.run(0.0)
        with pytest.raises(ValueError):
            osys.run(10.0, num_arrivals=0)

    def test_second_run_continues_the_clock(self, workload, spec):
        osys = _session(workload, spec).open()
        first = osys.run(60.0, num_arrivals=10, seed=0)
        with pytest.raises(ValueError, match="reset"):
            osys.run(60.0, num_arrivals=10, seed=1)
        second = osys.run(60.0, num_arrivals=10, seed=1, reset=False)
        assert second.records[0].arrival_s > first.horizon_s - 1e-9
        assert second.horizon_s > first.horizon_s

    def test_session_open_entry_point(self, workload, spec):
        osys = _session(workload, spec).open(policy="concurrent")
        assert isinstance(osys, OpenSystem)
        assert "concurrent" in repr(osys)


# ---------------------------------------------------------------------------
# Windowed metrics and the in-flight profile
# ---------------------------------------------------------------------------


class TestWindowedMetrics:
    @pytest.fixture(scope="class")
    def result(self, workload, spec):
        return simulate_open_system(
            _session(workload, spec), 120.0, num_arrivals=30, seed=7
        )

    def test_profile_counts(self, result):
        times, counts = in_flight_profile(result.records)
        assert len(times) == len(counts)
        assert (counts >= 0).all()
        assert counts.max() == result.peak_in_flight
        assert counts[-1] == 0  # everything eventually completes

    def test_windows_partition_the_horizon(self, result):
        windows = result.windowed(window_s=600.0)
        assert windows
        assert windows[0].start_s == 0.0
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start_s == pytest.approx(prev.end_s)
        assert sum(w.arrivals for w in windows) == len(result)
        assert sum(w.completions for w in windows) == len(result)

    def test_window_stats_bounded(self, result):
        for w in result.windowed(window_s=600.0):
            assert 0 <= w.mean_in_flight <= result.peak_in_flight
            if w.completions:
                assert w.p50_sojourn_s <= w.p95_sojourn_s
            else:
                assert np.isnan(w.p50_sojourn_s)

    def test_sliding_step(self, result):
        overlapping = sliding_window_stats(result.records, 1200.0, step_s=600.0)
        tumbling = result.windowed(1200.0)
        assert len(overlapping) >= len(tumbling)

    def test_empty_records(self):
        assert sliding_window_stats([], 100.0) == []
        times, counts = in_flight_profile([])
        assert len(times) == 0 and len(counts) == 0


# ---------------------------------------------------------------------------
# QueueingResult aggregates (satellite: NaN guards + busy-union utilization)
# ---------------------------------------------------------------------------


class TestQueueingResultAggregates:
    def test_empty_records_yield_nan_not_crash(self):
        empty = QueueingResult("s", 1.0)
        assert np.isnan(empty.mean_wait_s)
        assert np.isnan(empty.mean_service_s)
        assert np.isnan(empty.mean_sojourn_s)
        assert np.isnan(empty.sojourn_percentile(50))
        assert empty.utilization == 0.0

    def test_utilization_unions_overlap(self):
        result = QueueingResult("s", 1.0)
        result.records = [
            QueuedRequestRecord(0, 0.0, 0.0, 10.0, 1.0),
            QueuedRequestRecord(1, 0.0, 5.0, 15.0, 1.0),  # overlaps the first
            QueuedRequestRecord(2, 0.0, 30.0, 40.0, 1.0),
        ]
        # union busy = [0, 15] + [30, 40] = 25 over horizon 40.
        assert result.utilization == pytest.approx(25.0 / 40.0)

    def test_utilization_out_of_order_records(self):
        result = QueueingResult("s", 1.0)
        result.records = [
            QueuedRequestRecord(1, 0.0, 20.0, 30.0, 1.0),
            QueuedRequestRecord(0, 0.0, 0.0, 10.0, 1.0),
        ]
        assert result.utilization == pytest.approx(20.0 / 30.0)


# ---------------------------------------------------------------------------
# TapeJob completion index (satellite: O(n) extent consumption)
# ---------------------------------------------------------------------------


class TestTapeJobCompletion:
    def _job(self, n=4):
        extents = [
            ObjectExtent(object_id=i, start_mb=10.0 * i, size_mb=5.0)
            for i in range(n)
        ]
        return TapeJob(TapeId(0, 0), extents)

    def test_begin_advance(self):
        job = self._job(3)
        ordered = list(reversed(job.extents))
        job.begin(ordered)
        assert job.extents == ordered
        assert not job.is_done
        for i in range(3):
            assert len(job.remaining_extents) == 3 - i
            job.advance()
        assert job.is_done
        assert job.remaining_extents == []

    def test_split_remaining(self):
        job = self._job(4)
        job.begin(list(job.extents))
        job.advance()
        job.advance()
        rest = job.split_remaining()
        assert rest.tape_id == job.tape_id
        assert rest.completed == 0
        assert rest.extents == job.extents[2:]


# ---------------------------------------------------------------------------
# Kernel fast-path parity: seed-for-seed goldens over the full result surface
# ---------------------------------------------------------------------------


def _digest(values):
    return hashlib.sha256(repr(tuple(values)).encode()).hexdigest()[:16]


@pytest.mark.skipif(
    not trace_enabled_by_env(), reason="parity goldens include span digests"
)
class TestKernelFastPathParity:
    """Bit-identical goldens guarding the DES kernel/engine fast path.

    The slotted events, timeout fast lane, inlined run loop, lazy span
    storage and dispatcher hoists are all pure optimizations: seed for
    seed, every sojourn, span tuple, metric and fault counter must stay
    exactly what the generic paths produced.  The digests below were
    captured on the drive-starved configuration before the fast path
    landed; any change to hot-path event ordering, span bookkeeping or
    float arithmetic moves at least one of them.
    """

    GOLDEN = {
        "serial-fcfs": dict(
            mean_sojourn_s=253.4565958084526,
            horizon_s=909.8063320680933,
            sojourn_digest="62eb2befb0a3529b",
            span_count=1060,
            span_digest="151f24ef73f12657",
            metrics_digest="6180bd68e78b1863",
            switches=8,
            events_processed=1452,
            robot0=dict(grants=4, busy_s=56.0, queue_wait_s=22.729739828302286),
        ),
        "concurrent": dict(
            mean_sojourn_s=168.2069386104041,
            horizon_s=715.3968139415947,
            sojourn_digest="bff1b1d040d4183f",
            span_count=1236,
            span_digest="762acaa5735ac7df",
            metrics_digest="94aa3ccecc7eb4a8",
            switches=4,
            events_processed=1292,
            robot0=dict(grants=2, busy_s=28.0, queue_wait_s=0.0),
        ),
    }

    @pytest.mark.parametrize("policy", sorted(GOLDEN))
    def test_policy_parity(self, policy):
        golden = self.GOLDEN[policy]
        session = _starved_session()
        opensys = session.open(policy=policy)
        result = opensys.run(240.0, num_arrivals=30, seed=11)

        assert result.mean_sojourn_s == golden["mean_sojourn_s"]
        assert result.horizon_s == golden["horizon_s"]
        assert _digest(r.sojourn_s for r in result.records) == golden["sojourn_digest"]

        spans = result.spans()
        assert len(spans) == golden["span_count"]
        assert (
            _digest(
                (s.name, s.start, s.end, s.span_id, s.parent_id, s.request_id)
                for s in spans
            )
            == golden["span_digest"]
        )
        assert (
            _digest(
                (m.response_s, m.seek_s, m.transfer_s, m.num_switches)
                for m in result.metrics
            )
            == golden["metrics_digest"]
        )
        assert sum(m.num_switches for m in result.metrics) == golden["switches"]
        assert opensys.env.events_processed == golden["events_processed"]

        robot0 = result.resources[sorted(n for n in result.resources if "robot" in n)[0]]
        for key, value in golden["robot0"].items():
            assert robot0[key] == value

    @pytest.mark.parametrize("policy", sorted(GOLDEN))
    def test_explicit_greedy_planner_matches_goldens(self, policy):
        """Requesting ``greedy-sweep`` by name is the identical code path to
        the default: the planner refactor must reproduce the pre-refactor
        digests bit for bit, seed for seed."""
        golden = self.GOLDEN[policy]
        session = _starved_session()
        opensys = session.open(policy=policy, seek_planner="greedy-sweep")
        result = opensys.run(240.0, num_arrivals=30, seed=11)

        assert result.mean_sojourn_s == golden["mean_sojourn_s"]
        assert result.horizon_s == golden["horizon_s"]
        assert _digest(r.sojourn_s for r in result.records) == golden["sojourn_digest"]
        spans = result.spans()
        assert len(spans) == golden["span_count"]
        assert (
            _digest(
                (s.name, s.start, s.end, s.span_id, s.parent_id, s.request_id)
                for s in spans
            )
            == golden["span_digest"]
        )
        assert opensys.env.events_processed == golden["events_processed"]

    def test_faulted_parity(self):
        """An armed FaultSpec run: availability and fault counters included."""
        session = _starved_session()
        opensys = session.open(
            policy="concurrent",
            faults=(
                DriveFaultProcess(mtbf_s=1200.0, mttr_s=300.0),
                TransientFaults(probability=0.05),
            ),
            fault_seed=5,
        )
        result = opensys.run(240.0, num_arrivals=30, seed=11)

        assert result.mean_sojourn_s == 176.86092777024982
        assert result.horizon_s == 2044.5652057413329
        assert _digest(r.sojourn_s for r in result.records) == "a00856937e4ecac8"
        assert len(result.spans()) == 1247
        assert result.availability == 0.9602682894847447
        assert result.aborted_requests == 0
        assert opensys.env.events_processed == 1322
        faults = result.faults
        assert faults["drive_failures"] == 1.0
        assert faults["drive_repairs"] == 1.0
        assert faults["transient_errors"] == 5.0
        assert faults["retries"] == 5.0
        assert faults["escalations"] == 0.0
        assert faults["degraded_time_s"] == 324.9362915363114


class TestRedundancyDegenerateParity:
    """r=1 / k=n=1 wrappers are exact pass-throughs of the base scheme.

    The redundancy serve path only activates when the location index holds
    redundant extents; a degenerate wrapper must therefore reproduce the
    base run bit for bit — same records, same metrics, and *no*
    ``redundancy.*`` instruments (whose mere registration would move the
    pinned ``metrics_digest`` goldens above).
    """

    SPECS = {"replicated-r1": "r=1", "erasure-k1n1": "k=1,n=1"}

    def _wrapped_session(self, redundancy):
        from repro.redundancy import wrap_scheme

        workload = _workload(
            num_objects=600, request_size_bounds=(8, 16), mean_object_size_mb=None
        )
        spec = _spec(
            num_drives=2, num_tapes=40, disk_bandwidth_mb_s=20.0,
            tape_capacity_mb=2_000.0,
        )
        scheme = wrap_scheme(ObjectProbabilityPlacement(), redundancy)
        return SimulationSession(workload, spec, scheme=scheme)

    @pytest.mark.parametrize("redundancy", sorted(SPECS.values()))
    def test_degenerate_run_is_bit_identical(self, redundancy):
        base = _starved_session().open(policy="concurrent")
        base_result = base.run(240.0, num_arrivals=30, seed=11)
        wrapped = self._wrapped_session(redundancy).open(policy="concurrent")
        result = wrapped.run(240.0, num_arrivals=30, seed=11)

        assert not wrapped.index.has_redundancy
        assert [r.sojourn_s for r in result.records] == [
            r.sojourn_s for r in base_result.records
        ]
        assert [m.response_s for m in result.metrics] == [
            m.response_s for m in base_result.metrics
        ]
        assert result.horizon_s == base_result.horizon_s
        assert sum(m.num_switches for m in result.metrics) == sum(
            m.num_switches for m in base_result.metrics
        )
        assert not any(
            name.startswith("redundancy.") for name in result.registry.counters
        )
        assert "replica_fallbacks" not in result.registry.digests

    @pytest.mark.skipif(
        not trace_enabled_by_env(), reason="parity goldens include span digests"
    )
    @pytest.mark.parametrize("redundancy", sorted(SPECS.values()))
    def test_degenerate_run_matches_pinned_goldens(self, redundancy):
        """The wrapped run hits the *same* goldens as the kernel fast path."""
        golden = TestKernelFastPathParity.GOLDEN["concurrent"]
        opensys = self._wrapped_session(redundancy).open(policy="concurrent")
        result = opensys.run(240.0, num_arrivals=30, seed=11)

        assert result.mean_sojourn_s == golden["mean_sojourn_s"]
        assert result.horizon_s == golden["horizon_s"]
        assert _digest(r.sojourn_s for r in result.records) == golden["sojourn_digest"]
        assert (
            _digest(
                (m.response_s, m.seek_s, m.transfer_s, m.num_switches)
                for m in result.metrics
            )
            == golden["metrics_digest"]
        )
        spans = result.spans()
        assert len(spans) == golden["span_count"]
        assert (
            _digest(
                (s.name, s.start, s.end, s.span_id, s.parent_id, s.request_id)
                for s in spans
            )
            == golden["span_digest"]
        )
        assert opensys.env.events_processed == golden["events_processed"]
