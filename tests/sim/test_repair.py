"""Tests for the media-loss repair subsystem (`repro.sim.repair`).

ISSUE 9's acceptance properties, from four sides:

* **Durability with redundancy** — destroying a whole cartridge under
  r=2 (or k=2,n=3) loses nothing: every affected group is rebuilt to
  full redundancy before the horizon, on tapes honoring anti-affinity.
* **Durability without redundancy** — the same loss under r=1 is counted
  (``objects_lost``, finite durability) instead of crashing or hanging;
  requests touching lost objects abort.
* **Repair under concurrent faults** — rebuilds survive drive failures
  (resume on surviving drives) and robot outages (wait them out).
* **Parity** — media-fault-free runs register no ``repair.*``
  instruments and keep their results bit-identical.
"""

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import ObjectProbabilityPlacement, ParallelBatchPlacement
from repro.redundancy import wrap_scheme
from repro.sim import (
    REPAIR_POLICIES,
    DriveFailure,
    RobotOutage,
    SimulationSession,
    TapeFailure,
    TapeWearProcess,
)
from repro.workload import generate_workload


def _workload(**overrides):
    params = dict(
        num_objects=300,
        num_requests=20,
        request_size_bounds=(4, 10),
        object_size_bounds_mb=(10.0, 400.0),
        mean_object_size_mb=100.0,
        seed=21,
    )
    params.update(overrides)
    return generate_workload(**params)


def _spec(num_drives=4, num_tapes=12, num_libraries=2, tape_capacity_mb=50_000.0):
    return SystemSpec(
        num_libraries=num_libraries,
        library=LibrarySpec(
            num_drives=num_drives,
            num_tapes=num_tapes,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=tape_capacity_mb, max_rewind_s=10.0),
        ),
    )


def _session(workload, redundancy=None, scheme=None):
    base = scheme or ObjectProbabilityPlacement()
    if redundancy:
        base = wrap_scheme(base, redundancy)
    return SimulationSession(workload, _spec(), scheme=base)


def _busiest_tape(session):
    return max(session.system.all_tapes(), key=lambda t: (t.used_mb, t.id))


@pytest.fixture(scope="module")
def workload():
    return _workload()


def _assert_anti_affinity(index, num_objects):
    """No tape holds two members of the same (object, part) group."""
    for oid in range(num_objects):
        if oid not in index:
            continue
        seen = {}
        for tape_id, extent in index.locate_all(oid):
            key = (extent.part, tape_id)
            assert key not in seen, (
                f"object {oid} part {extent.part} has two members on {tape_id}"
            )
            seen[key] = extent


# ---------------------------------------------------------------------------
# Media loss with redundancy: everything rebuilds
# ---------------------------------------------------------------------------


class TestRepairWithRedundancy:
    @pytest.fixture(scope="class", params=sorted(REPAIR_POLICIES))
    def r2_run(self, request):
        workload = _workload()
        session = _session(workload, "r=2")
        tape = _busiest_tape(session)
        osys = session.open(
            faults=(TapeFailure(str(tape.id), at_s=300.0),),
            repair_policy=request.param,
        )
        result = osys.run(120.0, num_arrivals=20, seed=3)
        return session, tape, result

    def test_zero_objects_lost(self, r2_run):
        _, tape, result = r2_run
        assert len(tape) > 0
        assert result.faults["tape_losses"] == 1
        assert result.objects_lost == 0
        assert result.durability == 1.0

    def test_every_group_back_to_full_redundancy(self, r2_run):
        session, tape, result = r2_run
        assert result.repair["members_rebuilt"] == len(tape)
        assert result.repair["groups_at_risk"] == 0
        assert result.repair["repairs_failed"] == 0
        index = session.index
        for oid in tape.object_ids:
            assert index.is_complete(oid)
            # The rebuilt member must not live on the dead cartridge.
            assert tape.id not in index.tapes_of(oid)

    def test_rebuilt_members_honor_anti_affinity(self, r2_run):
        session, _, _ = r2_run
        _assert_anti_affinity(session.index, 300)

    def test_backlog_and_gauge_accounting(self, r2_run):
        _, _, result = r2_run
        assert result.repair_backlog_seconds > 0
        gauge = result.registry.gauges["repair.groups_at_risk"]
        assert gauge.value == 0
        digest = result.registry.digests["repair.backlog_s"]
        assert digest.count == result.repair["members_rebuilt"]

    def test_requests_keep_completing(self, r2_run):
        _, _, result = r2_run
        assert len(result) == 20
        assert result.aborted_requests == 0

    def test_erasure_coded_rebuild(self, workload):
        session = _session(workload, "k=2,n=3")
        tape = _busiest_tape(session)
        result = session.open(
            faults=(TapeFailure(str(tape.id), at_s=300.0),),
            repair_policy="fair-share",
        ).run(120.0, num_arrivals=20, seed=3)
        assert result.objects_lost == 0
        assert result.repair["members_rebuilt"] == len(tape)
        for oid in tape.object_ids:
            assert session.index.is_complete(oid)

    def test_deterministic_for_fixed_seeds(self, workload):
        def run():
            session = _session(workload, "r=2")
            tape = _busiest_tape(session)
            osys = session.open(
                faults=(TapeFailure(str(tape.id), at_s=300.0),),
                repair_policy="fair-share",
            )
            result = osys.run(120.0, num_arrivals=15, seed=5)
            return (
                result.mean_sojourn_s,
                result.repair["members_rebuilt"],
                result.repair["backlog_s"],
                osys.env.events_processed,
            )

        assert run() == run()


# ---------------------------------------------------------------------------
# Media loss without redundancy: counted, not crashed
# ---------------------------------------------------------------------------


class TestMediaLossWithoutRedundancy:
    @pytest.fixture(scope="class")
    def r1_run(self):
        workload = _workload()
        session = _session(workload)
        tape = _busiest_tape(session)
        result = session.open(
            faults=(TapeFailure(str(tape.id), at_s=100.0),),
        ).run(120.0, num_arrivals=20, seed=3)
        return session, tape, result

    def test_objects_lost_counted(self, r1_run):
        _, tape, result = r1_run
        assert result.objects_lost == len(tape) > 0
        assert result.durability == pytest.approx(
            1.0 - len(tape) / result.repair["objects_total"]
        )
        assert result.repair["members_rebuilt"] == 0
        assert result.repair["groups_lost"] == len(tape)

    def test_run_terminates_and_serves_survivors(self, r1_run):
        _, _, result = r1_run
        assert len(result) == 20
        assert result.aborted_requests < 20

    def test_requests_on_lost_tape_abort(self, r1_run):
        _, _, result = r1_run
        aborted = [r for r in result.records if r.aborted]
        assert aborted
        assert len(aborted) == result.aborted_requests
        # The abort reason names the media failure, not a drive outage.
        errors = [
            str(s.attrs.get("error", ""))
            for s in result.spans()
            if s.attrs.get("error")
        ]
        assert any("media failure" in e for e in errors)


# ---------------------------------------------------------------------------
# Wear-driven losses
# ---------------------------------------------------------------------------


class TestTapeWear:
    def test_wear_cascade_terminates_with_consistent_books(self, workload):
        """Mean 2 mount/seek cycles wears out the whole fleet — rebuild
        targets included.  The cascade must terminate (no hang) with every
        loss counted, not silently rebuild onto dead media."""
        session = _session(workload, "r=2")
        result = session.open(
            faults=(TapeWearProcess(mean_cycles=2.0, shape=2.0),),
            repair_policy="user-first",
            fault_seed=7,
        ).run(120.0, num_arrivals=20, seed=3)
        assert result.faults["tape_losses"] > 0
        assert len(result) == 20
        assert 0.0 <= result.durability <= 1.0
        summary = result.repair
        assert summary["objects_lost"] == summary["groups_lost"]
        # Every detected degradation is resolved or accounted at the
        # horizon: rebuilt, failed, or still at risk.
        assert summary["groups_degraded"] >= (
            summary["members_rebuilt"] + summary["repairs_failed"]
        ) - summary["groups_at_risk"]

    def test_wear_is_deterministic_in_fault_seed(self, workload):
        def losses(fault_seed):
            session = _session(workload, "r=2")
            osys = session.open(
                faults=(TapeWearProcess(mean_cycles=3.0),),
                repair_policy="user-first",
                fault_seed=fault_seed,
            )
            result = osys.run(120.0, num_arrivals=15, seed=3)
            return result.faults["tape_losses"], osys.env.events_processed

        assert losses(7) == losses(7)

    def test_astronomical_wear_threshold_is_inert(self, workload):
        session = _session(workload, "r=2")
        result = session.open(
            faults=(TapeWearProcess(mean_cycles=1e12),),
        ).run(120.0, num_arrivals=10, seed=3)
        assert result.faults["tape_losses"] == 0
        assert result.repair == {} or result.repair["members_rebuilt"] == 0


# ---------------------------------------------------------------------------
# Repair under concurrent faults
# ---------------------------------------------------------------------------


class TestRepairUnderFaults:
    def test_repair_resumes_after_drive_failure(self, workload):
        """A drive dies while rebuilds are in flight: orphaned repair jobs
        re-queue and finish on the surviving drives."""
        session = _session(workload, "r=2")
        tape = _busiest_tape(session)
        dead_drive = session.system.libraries[tape.id.library].drives[0]
        result = session.open(
            faults=(
                TapeFailure(str(tape.id), at_s=300.0),
                DriveFailure(str(dead_drive.id), at_s=320.0),
            ),
            repair_policy="repair-first",
        ).run(120.0, num_arrivals=20, seed=3)
        assert result.faults["drive_failures"] == 1
        assert result.objects_lost == 0
        assert result.repair["members_rebuilt"] == len(tape)
        for oid in tape.object_ids:
            assert session.index.is_complete(oid)

    def test_repair_waits_out_robot_outage(self, workload):
        """Loss during a robot outage: rebuild mounts wait for the robot
        and complete after it recovers."""
        session = _session(workload, "r=2")
        tape = _busiest_tape(session)
        result = session.open(
            faults=(
                TapeFailure(str(tape.id), at_s=300.0),
                RobotOutage(at_s=250.0, duration_s=600.0),
            ),
            repair_policy="fair-share",
        ).run(120.0, num_arrivals=20, seed=3)
        # One outage per library (the spec targets all of them).
        assert result.faults["robot_outages"] == 2
        assert result.objects_lost == 0
        assert result.repair["members_rebuilt"] == len(tape)


# ---------------------------------------------------------------------------
# Anti-affinity property across random loss scenarios
# ---------------------------------------------------------------------------


@given(
    tape_index=st.integers(min_value=0, max_value=23),
    policy=st.sampled_from(sorted(REPAIR_POLICIES)),
    seed=st.integers(min_value=0, max_value=3),
)
@hyp_settings(max_examples=8, deadline=None)
def test_rebuilt_member_never_lands_on_sibling_tape(tape_index, policy, seed):
    """Whatever cartridge dies and whatever repair policy runs, a rebuilt
    member never shares a tape with another member of its group."""
    workload = _workload(num_objects=120, num_requests=10)
    session = _session(workload, "r=2", scheme=ParallelBatchPlacement(m=2))
    tapes = sorted(session.system.all_tapes(), key=lambda t: t.id)
    tape = tapes[tape_index % len(tapes)]
    result = session.open(
        faults=(TapeFailure(str(tape.id), at_s=120.0),),
        repair_policy=policy,
    ).run(120.0, num_arrivals=10, seed=seed)
    assert result.objects_lost == 0
    _assert_anti_affinity(session.index, 120)
    for oid in tape.object_ids:
        assert tape.id not in session.index.tapes_of(oid)


# ---------------------------------------------------------------------------
# Migration never targets a lost tape
# ---------------------------------------------------------------------------


class TestMigrationAvoidsLostTapes:
    def _placed(self, workload):
        scheme = ParallelBatchPlacement(m=2)
        spec = _spec()
        return scheme.place(workload, spec), spec

    def test_lost_tape_receives_nothing(self, workload):
        from repro.redundancy import migrate_by_popularity

        result, spec = self._placed(workload)
        lost = {tid for tid in sorted(result.layouts) if result.layouts[tid]}
        lost = {sorted(lost)[0], sorted(lost)[-1]}
        migrated, _ = migrate_by_popularity(
            result, workload, spec, num_epochs=3, lost_tapes=lost
        )
        for tid in lost:
            assert migrated.layouts[tid] == []

    def test_lost_objects_do_not_resurface(self, workload):
        from repro.redundancy import migrate_by_popularity

        result, spec = self._placed(workload)
        lost_tape = next(
            tid for tid in sorted(result.layouts) if result.layouts[tid]
        )
        lost_objects = {e.object_id for e in result.layouts[lost_tape]}
        migrated, _ = migrate_by_popularity(
            result, workload, spec, num_epochs=3, lost_tapes={lost_tape}
        )
        placed = {
            e.object_id for extents in migrated.layouts.values() for e in extents
        }
        assert not (placed & lost_objects)

    def test_no_lost_tapes_is_identical_to_default(self, workload):
        from repro.redundancy import migrate_by_popularity

        result, spec = self._placed(workload)
        a, _ = migrate_by_popularity(result, workload, spec, num_epochs=3)
        b, _ = migrate_by_popularity(
            result, workload, spec, num_epochs=3, lost_tapes=set()
        )
        assert a.layouts == b.layouts


# ---------------------------------------------------------------------------
# Validation and parity
# ---------------------------------------------------------------------------


class TestValidationAndParity:
    def test_unknown_repair_policy_rejected(self, workload):
        session = _session(workload, "r=2")
        with pytest.raises(ValueError, match="repair policy"):
            session.open(
                faults=(TapeFailure("L0.T0", at_s=1.0),),
                repair_policy="yolo",
            )

    def test_unknown_read_selection_rejected(self, workload):
        session = _session(workload, "r=2")
        with pytest.raises(ValueError, match="read selection"):
            session.open(read_selection="fastest")

    def test_unknown_tape_name_rejected_before_simulation(self, workload):
        session = _session(workload)
        with pytest.raises(ValueError, match="unknown tape"):
            session.open(faults=(TapeFailure("L9.T99", at_s=1.0),))

    def test_negative_loss_time_rejected(self, workload):
        session = _session(workload)
        with pytest.raises(ValueError, match="must be >= 0"):
            session.open(faults=(TapeFailure("L0.T0", at_s=-1.0),))

    def test_wear_spec_validation(self, workload):
        session = _session(workload)
        with pytest.raises(ValueError):
            session.open(faults=(TapeWearProcess(mean_cycles=0.0),))
        with pytest.raises(ValueError, match="unknown tape"):
            session.open(
                faults=(TapeWearProcess(mean_cycles=5.0, tapes=("L9.T99",)),)
            )

    def test_serial_fcfs_rejects_media_faults(self, workload):
        session = _session(workload)
        with pytest.raises(ValueError):
            session.open(
                policy="serial-fcfs",
                faults=(TapeFailure("L0.T0", at_s=1.0),),
            )

    def test_no_media_faults_registers_no_repair_instruments(self, workload):
        session = _session(workload, "r=2")
        result = session.open(repair_policy="fair-share").run(
            120.0, num_arrivals=10, seed=3
        )
        assert result.repair == {}
        assert result.durability == 1.0
        assert result.objects_lost == 0
        registry = result.registry
        assert not any(k.startswith("repair.") for k in registry.counters)
        assert "faults.tape_losses" not in registry.counters

    def test_cheapest_read_selection_serves_everything(self, workload):
        session = _session(workload, "r=2")
        result = session.open(read_selection="cheapest").run(
            120.0, num_arrivals=20, seed=3
        )
        assert len(result) == 20
        assert result.aborted_requests == 0
