"""Tests for the pure scheduling policy (plan building)."""

import pytest

from repro.hardware import LibrarySpec, ObjectExtent, SystemSpec, TapeId, TapeSystem
from repro.sim import build_library_plan, estimate_job_time
from repro.sim.scheduling import TapeJob


@pytest.fixture
def system():
    return TapeSystem(
        SystemSpec(num_libraries=2, library=LibrarySpec(num_drives=3, num_tapes=6))
    )


def extents(*specs):
    return [ObjectExtent(o, s, z) for o, s, z in specs]


class TestTapeJob:
    def test_bytes_and_len(self):
        job = TapeJob(TapeId(0, 0), extents((1, 0, 100), (2, 200, 50)))
        assert job.bytes_mb == 150
        assert len(job) == 2


class TestBuildLibraryPlan:
    def test_only_local_tapes_considered(self, system):
        lib = system.library(0)
        jobs = {
            TapeId(0, 0): extents((1, 0, 10)),
            TapeId(1, 0): extents((2, 0, 10)),  # other library
        }
        plan = build_library_plan(lib, jobs, {})
        all_tapes = [j.tape_id for j in plan.offline] + [
            j.tape_id for _, j in plan.serving
        ]
        assert all_tapes == [TapeId(0, 0)]

    def test_mounted_tapes_serve_in_place(self, system):
        lib = system.library(0)
        lib.drives[1].mount(lib.tape(TapeId(0, 0)))
        jobs = {TapeId(0, 0): extents((1, 0, 10))}
        plan = build_library_plan(lib, jobs, {})
        assert plan.serving == [(1, plan.serving[0][1])]
        assert plan.offline == []
        assert plan.switch_order == []  # nothing offline -> no switching

    def test_offline_jobs_sorted_lpt(self, system):
        lib = system.library(0)
        for slot, size in [(0, 10.0), (1, 500.0), (2, 100.0)]:
            lib.tape(TapeId(0, slot)).write_layout(extents((slot + 1, 0, size)))
        jobs = {
            TapeId(0, 0): extents((1, 0, 10.0)),
            TapeId(0, 1): extents((2, 0, 500.0)),
            TapeId(0, 2): extents((3, 0, 100.0)),
        }
        plan = build_library_plan(lib, jobs, {})
        assert [j.tape_id.slot for j in plan.offline] == [1, 2, 0]

    def test_switch_order_prefers_empty_then_least_popular(self, system):
        lib = system.library(0)
        # drive 0: popular mounted tape; drive 1: unpopular; drive 2: empty
        lib.drives[0].mount(lib.tape(TapeId(0, 3)))
        lib.drives[1].mount(lib.tape(TapeId(0, 4)))
        priority = {TapeId(0, 3): 0.9, TapeId(0, 4): 0.1}
        jobs = {TapeId(0, 0): extents((1, 0, 10))}
        plan = build_library_plan(lib, jobs, priority)
        assert plan.switch_order == [2, 1, 0]

    def test_serving_drives_switch_last(self, system):
        lib = system.library(0)
        lib.drives[0].mount(lib.tape(TapeId(0, 3)))  # will serve
        jobs = {
            TapeId(0, 3): extents((1, 0, 10)),
            TapeId(0, 0): extents((2, 0, 10)),
        }
        plan = build_library_plan(lib, jobs, {})
        assert plan.switch_order[-1] == 0
        assert plan.switch_order[0] in (1, 2)  # empty drives first

    def test_pinned_drives_excluded(self, system):
        lib = system.library(0)
        lib.drives[0].pinned = True
        lib.drives[1].pinned = True
        jobs = {TapeId(0, 0): extents((1, 0, 10))}
        plan = build_library_plan(lib, jobs, {})
        assert plan.switch_order == [2]

    def test_empty_plan(self, system):
        plan = build_library_plan(system.library(0), {}, {})
        assert plan.is_empty

    def test_estimate_includes_seek_and_transfer(self, system):
        lib = system.library(0)
        job = TapeJob(TapeId(0, 0), extents((1, 200_000.0, 8000.0)))
        est = estimate_job_time(job, lib)
        seek = lib.spec.tape.locate_time(0, 200_000.0)
        transfer = lib.spec.drive.transfer_time(8000.0)
        assert est == pytest.approx(seek + transfer)


class TestEstimateJobTime:
    def test_mounted_job_uses_drive_specific_tape_spec(self, system):
        """A drive holding the job's tape prices seeks with *its own*
        ``TapeSpec`` — not the library-wide default re-derived from the
        spec (the pre-refactor behavior)."""
        import dataclasses

        lib = system.library(0)
        job = TapeJob(TapeId(0, 0), extents((1, 200_000.0, 100.0)))
        baseline = estimate_job_time(job, lib)

        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        assert estimate_job_time(job, lib) == pytest.approx(baseline)

        slow = dataclasses.replace(
            lib.spec.tape, max_rewind_s=lib.spec.tape.max_rewind_s * 2
        )
        lib.drives[0].tape_spec = slow
        slowed = estimate_job_time(job, lib)
        transfer = lib.spec.drive.transfer_time(100.0)
        assert slowed - transfer == pytest.approx(2 * (baseline - transfer))

    def test_unmounted_job_falls_back_to_library_tape_spec(self, system):
        lib = system.library(0)
        job = TapeJob(TapeId(0, 1), extents((1, 200_000.0, 100.0)))
        seek = lib.spec.tape.locate_time(0, 200_000.0)
        transfer = lib.spec.drive.transfer_time(100.0)
        assert estimate_job_time(job, lib) == pytest.approx(seek + transfer)

    def test_planner_kwarg_changes_the_seek_estimate(self, system):
        import dataclasses

        lib = system.library(0)
        # Two clusters + a positive locate startup: the exact planner's
        # estimate must be <= the default greedy sweep's.
        startup = dataclasses.replace(lib.spec.tape, locate_startup_s=5.0)
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        lib.drives[0].tape_spec = startup
        job = TapeJob(
            TapeId(0, 0),
            extents((1, 10.0, 5.0), (2, 20.0, 5.0), (3, 500.0, 5.0)),
        )
        greedy = estimate_job_time(job, lib)
        exact = estimate_job_time(job, lib, planner="exact")
        assert exact <= greedy
