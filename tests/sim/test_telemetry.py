"""End-to-end telemetry: span trees, trace export round-trip, attribution.

The acceptance contract for the observability layer:

* exporting an open-system run to Chrome/Perfetto ``trace_event`` JSON and
  re-importing it reproduces every request's ``seek_s``/``transfer_s``/
  ``switch_s``/``response_s`` within 1e-6 (the trace carries exact
  simulated timestamps in ``args``);
* the stage-attribution report agrees with the
  :class:`~repro.sim.metrics.EvaluationResult` aggregates computed by the
  engine itself;
* spans close exactly once — including tape jobs cut down mid-stage by a
  drive-failure watchdog, which must land as ``aborted`` spans, not
  duplicates or leaks;
* ``REPRO_TRACE=0`` turns all of it off without changing the simulation.
"""

import pytest

from repro.des import Trace
from repro.obs import (
    attribute_requests,
    spans_from_chrome_trace,
    validate_chrome_trace,
)
from repro.sim import EvaluationResult, simulate_open_system

from .test_opensystem import _session, _spec, _workload, spec, workload  # noqa: F401


def _run(workload, spec, policy, rate=120.0, n=20, seed=4, **kwargs):
    return simulate_open_system(
        _session(workload, spec), rate, num_arrivals=n, seed=seed, policy=policy, **kwargs
    )


# ---------------------------------------------------------------------------
# Acceptance: trace export round-trip reproduces the engine's decomposition
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("policy", ["serial-fcfs", "concurrent"])
    def test_reimported_trace_reproduces_metrics(self, workload, spec, policy):
        result = _run(workload, spec, policy)
        doc = result.to_chrome_trace()
        assert validate_chrome_trace(doc) == []

        report = attribute_requests(spans_from_chrome_trace(doc))
        assert len(report) == len(result)
        # Tokens are assigned in arrival order and metrics are sorted by
        # arrival, so attribution i pairs with metrics[i].
        for attribution, metrics in zip(report.requests, result.metrics):
            assert attribution.response_s == pytest.approx(metrics.response_s, abs=1e-6)
            assert attribution.seek_s == pytest.approx(metrics.seek_s, abs=1e-6)
            assert attribution.transfer_s == pytest.approx(metrics.transfer_s, abs=1e-6)
            assert attribution.switch_s == pytest.approx(metrics.switch_s, abs=1e-6)

    def test_stage_report_agrees_with_evaluation_aggregates(self, workload, spec):
        result = _run(workload, spec, "concurrent")
        report = result.stage_report()
        ev = EvaluationResult(scheme=result.scheme, samples=result.metrics)
        assert report.avg_response_s == pytest.approx(ev.avg_response_s, abs=1e-6)
        assert report.avg_seek_s == pytest.approx(ev.avg_seek_s, abs=1e-6)
        assert report.avg_transfer_s == pytest.approx(ev.avg_transfer_s, abs=1e-6)
        assert report.avg_switch_s == pytest.approx(ev.avg_switch_s, abs=1e-6)


# ---------------------------------------------------------------------------
# Span-tree structure
# ---------------------------------------------------------------------------


class TestSpanTree:
    def test_every_request_has_a_rooted_tree(self, workload, spec):
        result = _run(workload, spec, "concurrent")
        trace = result.trace
        by_id = trace.by_id()
        for span in trace:
            if span.parent_id is not None:
                parent = by_id[span.parent_id]  # parent exists
                assert parent.request_id == span.request_id
        # One root per served request, named "request", token-keyed.
        roots = trace.roots()
        assert sorted(s.request_id for s in roots) == list(range(len(result)))
        assert {s.name for s in roots} == {"request"}
        # Catalog ids ride along as an attribute (requests are sampled with
        # replacement, so they can repeat across tokens).
        assert all("catalog_id" in s.attrs for s in roots)

    def test_span_ids_are_unique(self, workload, spec):
        result = _run(workload, spec, "concurrent")
        ids = [s.span_id for s in result.trace]
        assert len(ids) == len(set(ids))

    def test_registry_sampler_snapshots_on_the_sim_clock(self, workload, spec):
        result = _run(workload, spec, "concurrent", sample_period_s=600.0)
        times = [snap["t_s"] for snap in result.registry.snapshots]
        assert times == sorted(times)
        assert len(times) >= 2  # periodic samples plus the final snapshot
        counters = result.registry.snapshots[-1]["counters"]
        assert counters["requests.arrived"] == len(result)
        assert counters["requests.completed"] == len(result)
        assert result.registry.snapshots[-1]["gauges"]["requests.in_flight"] == 0


# ---------------------------------------------------------------------------
# S4: watchdog-killed workers — exactly-once closure, occupancy accounting
# ---------------------------------------------------------------------------


class TestFailureTelemetry:
    @pytest.fixture(scope="class")
    def failed_run(self):
        wl, sp = _workload(), _spec()
        healthy = _run(wl, sp, "concurrent")
        failures = {"L0.D0": healthy.horizon_s / 4, "L0.D1": healthy.horizon_s / 2}
        return _run(wl, sp, "concurrent", failures=failures)

    def test_spans_close_exactly_once_under_failures(self, failed_run):
        ids = [s.span_id for s in failed_run.trace]
        assert len(ids) == len(set(ids))
        # The kill is visible: failure instants plus aborted stage spans.
        assert failed_run.trace.spans("drive_failure")
        assert any(s.aborted for s in failed_run.trace)

    def test_aborted_work_is_excluded_from_attribution(self, failed_run):
        report = attribute_requests(failed_run.spans())
        for attribution, metrics in zip(report.requests, failed_run.metrics):
            assert attribution.response_s == pytest.approx(metrics.response_s, abs=1e-6)
            assert attribution.seek_s == pytest.approx(metrics.seek_s, abs=1e-6)
            assert attribution.transfer_s == pytest.approx(metrics.transfer_s, abs=1e-6)

    def test_monitor_occupancy_stays_consistent(self, failed_run):
        for name, summary in failed_run.resources.items():
            capacity = 1 if name.endswith(".robot") else summary["max_in_use"]
            assert summary["max_in_use"] <= capacity
            assert summary["grants"] >= summary["max_in_use"]
            assert summary["busy_s"] <= failed_run.horizon_s + 1e-9
            assert summary["queue_wait_s"] >= 0.0

    def test_export_stays_valid_under_failures(self, failed_run):
        assert validate_chrome_trace(failed_run.to_chrome_trace()) == []


# ---------------------------------------------------------------------------
# S2: REPRO_TRACE=0 disables span recording without touching the simulation
# ---------------------------------------------------------------------------


class TestTraceGating:
    def test_disabled_trace_records_nothing(self, workload, spec, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        result = _run(workload, spec, "concurrent")
        assert len(result.spans()) == 0
        assert not result.trace.enabled

    def test_disabled_run_matches_enabled_run(self, workload, spec, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        enabled = _run(workload, spec, "concurrent")
        monkeypatch.setenv("REPRO_TRACE", "0")
        disabled = _run(workload, spec, "concurrent")
        assert [r.finish_s for r in disabled.records] == [
            r.finish_s for r in enabled.records
        ]
        assert [m.response_s for m in disabled.metrics] == [
            m.response_s for m in enabled.metrics
        ]

    def test_disabled_span_context_is_shared_and_null(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        trace = Trace()
        ctx_a = trace.span(None, "seek")
        ctx_b = trace.span(None, "transfer", parent=3, request=7)
        assert ctx_a is ctx_b  # one shared null context, no allocation
        assert ctx_a.id is None
        with ctx_a:
            pass
        assert trace.record("robot_wait", 0.0, 1.0) is None
        assert len(trace) == 0
