"""Metamorphic tests: known transformations of the inputs must transform
the simulator's outputs in predictable ways."""

import dataclasses

import numpy as np
import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import ObjectProbabilityPlacement, ParallelBatchPlacement
from repro.sim import SimulationSession
from repro.workload import generate_workload


def base_spec(**drive_overrides):
    drive = DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0)
    if drive_overrides:
        drive = dataclasses.replace(drive, **drive_overrides)
    return SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=24,
            cell_to_drive_s=2.0,
            drive=drive,
            tape=TapeSpec(capacity_mb=10_000.0, max_rewind_s=10.0),
        ),
    )


@pytest.fixture(scope="module")
def workload():
    # ~150 GB of request-referenced data vs 72 GB of mounted batch
    # capacity: requests must switch tapes.
    return generate_workload(
        num_objects=400,
        num_requests=40,
        request_size_bounds=(8, 16),
        object_size_bounds_mb=(50.0, 600.0),
        mean_object_size_mb=600.0,
        seed=33,
    )


def run(workload, spec, scheme=None, samples=25, seed=6):
    scheme = scheme or ParallelBatchPlacement(m=2)
    return SimulationSession(workload, spec, scheme=scheme).evaluate(
        num_samples=samples, seed=seed
    )


class TestTimeScaling:
    def test_doubling_all_times_doubles_response(self, workload):
        """All timing constants x2 (half rates, double constants) => every
        duration in the system doubles, so responses double exactly."""
        spec1 = base_spec()
        lib1 = spec1.library
        spec2 = SystemSpec(
            num_libraries=2,
            library=LibrarySpec(
                num_drives=4,
                num_tapes=24,
                cell_to_drive_s=2 * lib1.cell_to_drive_s,
                drive=DriveSpec(
                    transfer_rate_mb_s=lib1.drive.transfer_rate_mb_s / 2,
                    load_s=2 * lib1.drive.load_s,
                    unload_s=2 * lib1.drive.unload_s,
                ),
                tape=TapeSpec(
                    capacity_mb=lib1.tape.capacity_mb,
                    max_rewind_s=2 * lib1.tape.max_rewind_s,
                ),
            ),
        )
        a = run(workload, spec1)
        b = run(workload, spec2)
        assert b.avg_response_s == pytest.approx(2 * a.avg_response_s, rel=1e-9)
        assert b.avg_switch_s == pytest.approx(2 * a.avg_switch_s, rel=1e-6)
        assert b.avg_bandwidth_mb_s == pytest.approx(a.avg_bandwidth_mb_s / 2, rel=1e-9)


class TestRateScaling:
    def test_faster_drives_cut_transfer_only(self, workload):
        slow = run(workload, base_spec(transfer_rate_mb_s=10.0))
        fast = run(workload, base_spec(transfer_rate_mb_s=20.0))
        assert fast.avg_transfer_s == pytest.approx(slow.avg_transfer_s / 2, rel=0.05)
        assert fast.avg_response_s < slow.avg_response_s

    def test_faster_drives_never_hurt_any_request(self, workload):
        slow = run(workload, base_spec(transfer_rate_mb_s=10.0))
        fast = run(workload, base_spec(transfer_rate_mb_s=40.0))
        for a, b in zip(fast.samples, slow.samples):
            assert a.request_id == b.request_id
            assert a.response_s <= b.response_s + 1e-6


class TestSizeScaling:
    def test_scaling_object_sizes_scales_transfer(self, workload):
        """Object sizes x2 with everything else fixed: transfers double;
        switch counts stay in the same ballpark (same tapes-per-request
        structure up to capacity effects)."""
        small = run(workload, base_spec())
        big = run(workload.with_scaled_sizes(1.5), base_spec())
        assert big.avg_request_size_mb == pytest.approx(
            1.5 * small.avg_request_size_mb, rel=1e-9
        )
        assert big.avg_transfer_s > 1.2 * small.avg_transfer_s


class TestWorkloadInvariance:
    def test_request_order_within_seed_is_scheme_independent(self, workload):
        """Different schemes see the identical sampled stream for a seed."""
        a = run(workload, base_spec(), scheme=ParallelBatchPlacement(m=2))
        b = run(workload, base_spec(), scheme=ObjectProbabilityPlacement())
        assert [m.request_id for m in a.samples] == [m.request_id for m in b.samples]

    def test_bytes_served_equals_request_bytes(self, workload):
        result = run(workload, base_spec())
        for m in result.samples:
            request = workload.requests[m.request_id]
            assert m.size_mb == pytest.approx(request.total_size_mb(workload.catalog))


class TestRobotScaling:
    def test_instant_robot_reduces_switch_time(self, workload):
        slow_robot = base_spec()
        fast_robot = SystemSpec(
            num_libraries=2,
            library=dataclasses.replace(slow_robot.library, cell_to_drive_s=1e-6),
        )
        a = run(workload, slow_robot)
        b = run(workload, fast_robot)
        assert b.avg_switch_s < a.avg_switch_s
        # Transfer time is attributed to the *last-finishing* drive (the
        # paper's metric); a faster robot can change which drive that is,
        # so the attributed transfer may shift slightly -- but not much.
        assert b.avg_transfer_s == pytest.approx(a.avg_transfer_s, rel=0.05)
