"""Tests for metric definitions and aggregation."""

import pytest

from repro.sim import DriveServiceRecord, EvaluationResult, RequestMetrics


def record(drive, completion, seek=0.0, transfer=0.0, switches=0):
    return DriveServiceRecord(
        drive=drive, completion_s=completion, seek_s=seek, transfer_s=transfer,
        num_switches=switches,
    )


class TestRequestMetrics:
    def test_critical_drive_defines_decomposition(self):
        fast = record("a", completion=50, seek=5, transfer=40)
        slow = record("b", completion=100, seek=10, transfer=60, switches=1)
        m = RequestMetrics.from_drive_records(0, size_mb=8000, num_tapes=2, records=[fast, slow])
        assert m.response_s == 100
        assert m.seek_s == 10
        assert m.transfer_s == 60
        assert m.switch_s == pytest.approx(30)  # 100 - 10 - 60
        assert m.num_switches == 1
        assert m.num_drives == 2

    def test_bandwidth(self):
        m = RequestMetrics(0, size_mb=8000, response_s=100, seek_s=0, transfer_s=100,
                           num_tapes=1, num_switches=0, num_drives=1)
        assert m.bandwidth_mb_s == pytest.approx(80.0)

    def test_no_records_rejected(self):
        with pytest.raises(ValueError):
            RequestMetrics.from_drive_records(0, 100, 1, [])

    def test_nonpositive_response_rejected(self):
        with pytest.raises(ValueError):
            RequestMetrics(0, 10, 0.0, 0, 0, 1, 0, 1)

    def test_overhead(self):
        r = record("a", completion=100, seek=10, transfer=60)
        assert r.overhead_s == pytest.approx(30)


class TestEvaluationResult:
    @pytest.fixture
    def result(self):
        res = EvaluationResult(scheme="test")
        res.append(RequestMetrics(0, size_mb=1000, response_s=10, seek_s=1,
                                  transfer_s=5, num_tapes=2, num_switches=1, num_drives=2))
        res.append(RequestMetrics(1, size_mb=3000, response_s=20, seek_s=2,
                                  transfer_s=10, num_tapes=4, num_switches=3, num_drives=4))
        return res

    def test_averages(self, result):
        assert result.avg_response_s == pytest.approx(15)
        assert result.avg_seek_s == pytest.approx(1.5)
        assert result.avg_transfer_s == pytest.approx(7.5)
        assert result.avg_switch_s == pytest.approx((4 + 8) / 2)

    def test_avg_bandwidth_is_mean_of_ratios(self, result):
        assert result.avg_bandwidth_mb_s == pytest.approx((100 + 150) / 2)

    def test_aggregate_bandwidth_is_ratio_of_sums(self, result):
        assert result.aggregate_bandwidth_mb_s == pytest.approx(4000 / 30)

    def test_counts(self, result):
        assert len(result) == 2
        assert result.avg_switches_per_request == pytest.approx(2.0)
        assert result.avg_drives_per_request == pytest.approx(3.0)
        assert result.avg_request_size_mb == pytest.approx(2000)

    def test_transfer_fraction(self, result):
        assert result.transfer_fraction == pytest.approx(15 / 30)

    def test_summary_keys(self, result):
        s = result.summary()
        assert s["scheme"] == "test"
        assert s["samples"] == 2
        assert "avg_bandwidth_mb_s" in s
