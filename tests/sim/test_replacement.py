"""Tests for replacement policies."""

import pytest

from repro.hardware import LibrarySpec, SystemSpec, TapeId, TapeSystem
from repro.sim import available_policies, build_library_plan, replacement_key
from repro.hardware import ObjectExtent


@pytest.fixture
def library():
    system = TapeSystem(
        SystemSpec(num_libraries=1, library=LibrarySpec(num_drives=3, num_tapes=8))
    )
    return system.library(0)


def mount(library, drive_idx, slot):
    library.drives[drive_idx].mount(library.tape(TapeId(0, slot)))


def plan_for(library, policy, priority):
    jobs = {TapeId(0, 7): [ObjectExtent(1, 0, 10)]}
    library.tape(TapeId(0, 7)).write_layout([ObjectExtent(1, 0, 10)])
    return build_library_plan(library, jobs, priority, replacement_policy=policy)


class TestPolicies:
    def test_all_policies_listed(self):
        assert set(available_policies()) == {
            "least_popular",
            "most_popular",
            "oldest_mount",
            "newest_mount",
            "slot_order",
        }

    def test_unknown_policy_rejected(self, library):
        mount(library, 0, 0)
        with pytest.raises(ValueError, match="unknown replacement policy"):
            replacement_key("magic", library.drives[0], {})

    def test_least_popular_displaces_cold_tape_first(self, library):
        mount(library, 0, 0)
        mount(library, 1, 1)
        mount(library, 2, 2)
        priority = {TapeId(0, 0): 0.9, TapeId(0, 1): 0.1, TapeId(0, 2): 0.5}
        plan = plan_for(library, "least_popular", priority)
        assert plan.switch_order == [1, 2, 0]

    def test_most_popular_is_inverse(self, library):
        mount(library, 0, 0)
        mount(library, 1, 1)
        mount(library, 2, 2)
        priority = {TapeId(0, 0): 0.9, TapeId(0, 1): 0.1, TapeId(0, 2): 0.5}
        plan = plan_for(library, "most_popular", priority)
        assert plan.switch_order == [0, 2, 1]

    def test_oldest_mount_is_fifo(self, library):
        mount(library, 2, 2)  # mounted first
        mount(library, 0, 0)
        mount(library, 1, 1)
        plan = plan_for(library, "oldest_mount", {})
        assert plan.switch_order == [2, 0, 1]

    def test_newest_mount_is_lifo(self, library):
        mount(library, 2, 2)
        mount(library, 0, 0)
        mount(library, 1, 1)
        plan = plan_for(library, "newest_mount", {})
        assert plan.switch_order == [1, 0, 2]

    def test_slot_order_by_drive_index(self, library):
        mount(library, 2, 2)
        mount(library, 1, 1)
        mount(library, 0, 0)
        plan = plan_for(library, "slot_order", {})
        assert plan.switch_order == [0, 1, 2]

    def test_mount_serial_tracks_mount_order(self, library):
        mount(library, 0, 0)
        first = library.drives[0].mount_serial
        library.drives[0].unmount()
        mount(library, 0, 1)
        assert library.drives[0].mount_serial > first

    def test_unmounted_drive_serial_is_minus_one(self, library):
        assert library.drives[0].mount_serial == -1


class TestEndToEndPolicyEffect:
    def test_policy_changes_displacement_victim(self):
        """With least_popular the hot tape survives; with most_popular it
        is displaced."""
        from repro.catalog import LocationIndex, Request
        from repro.sim import simulate_request

        for policy, survivor_slot in [("least_popular", 0), ("most_popular", 1)]:
            system = TapeSystem(
                SystemSpec(num_libraries=1, library=LibrarySpec(num_drives=2, num_tapes=6))
            )
            lib = system.library(0)
            lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(10, 0, 10)])
            lib.tape(TapeId(0, 1)).write_layout([ObjectExtent(11, 0, 10)])
            lib.tape(TapeId(0, 5)).write_layout([ObjectExtent(1, 0, 10)])
            lib.drives[0].mount(lib.tape(TapeId(0, 0)))  # hot
            lib.drives[1].mount(lib.tape(TapeId(0, 1)))  # cold
            index = LocationIndex.from_system(system)
            priority = {TapeId(0, 0): 0.9, TapeId(0, 1): 0.1}

            simulate_request(
                system, index, Request(0, (1,), 1.0),
                tape_priority=priority, replacement_policy=policy,
            )
            mounted = set(system.mounted_tape_ids())
            assert TapeId(0, survivor_slot) in mounted, policy
