"""Tests for the local-search placement optimizer."""

import pytest

from repro.experiments import ExperimentSettings, paper_workload
from repro.model import CostModel, optimize_placement
from repro.placement import ObjectProbabilityPlacement, ParallelBatchPlacement
from repro.sim import SimulationSession


@pytest.fixture(scope="module")
def setup():
    settings = ExperimentSettings(scale="small")
    workload = paper_workload(settings)
    spec = settings.spec()
    return workload, spec


class TestOptimizePlacement:
    def test_objective_never_increases(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=60, seed=3)
        assert result.final_objective_s <= result.initial_objective_s + 1e-9
        assert result.trajectory == sorted(result.trajectory, reverse=True)

    def test_result_placement_is_valid(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=60, seed=3)
        result.placement.validate(workload.catalog, spec)
        assert result.placement.scheme.endswith("+search")

    def test_final_objective_matches_fresh_model(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=60, seed=3)
        model = CostModel(result.placement, spec)
        recomputed = model.average_response(
            list(workload.requests), workload.requests.probabilities
        )
        assert recomputed == pytest.approx(result.final_objective_s, rel=1e-9)

    def test_zero_iterations_is_identity(self, setup):
        workload, spec = setup
        placement = ParallelBatchPlacement(m=4).place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=0, seed=0)
        assert result.improvement == 0.0
        assert result.moves_accepted == 0

    def test_deterministic_for_seed(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        a = optimize_placement(placement, workload, spec, iterations=40, seed=9)
        b = optimize_placement(placement, workload, spec, iterations=40, seed=9)
        assert a.final_objective_s == pytest.approx(b.final_objective_s)
        assert a.moves_accepted == b.moves_accepted

    def test_heuristic_is_near_local_optimum(self, setup):
        """The headline finding: search barely improves the paper's scheme —
        the constructive heuristic already sits near a local optimum of its
        own objective."""
        workload, spec = setup
        placement = ParallelBatchPlacement(m=4).place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=100, seed=1)
        assert result.improvement < 0.05

    def test_optimized_placement_simulates(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        result = optimize_placement(placement, workload, spec, iterations=50, seed=2)
        session = SimulationSession(workload, spec, placement=result.placement)
        evaluation = session.evaluate(num_samples=10, seed=4)
        assert evaluation.avg_bandwidth_mb_s > 0

    def test_sample_requests_limits_objective_scope(self, setup):
        workload, spec = setup
        placement = ObjectProbabilityPlacement().place(workload, spec)
        result = optimize_placement(
            placement, workload, spec, iterations=30, seed=5, sample_requests=10
        )
        assert result.final_objective_s <= result.initial_objective_s + 1e-9
