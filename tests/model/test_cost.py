"""Tests for the analytic cost model against the DES simulator."""

import numpy as np
import pytest

from repro.experiments import ExperimentSettings, paper_workload
from repro.model import CostModel
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
)
from repro.sim import SimulationSession


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(scale="small")


@pytest.fixture(scope="module")
def workload(settings):
    return paper_workload(settings)


@pytest.fixture(scope="module")
def spec(settings):
    return settings.spec()


@pytest.fixture(scope="module", params=["pb", "op", "cp"])
def placement(request, workload, spec):
    scheme = {
        "pb": ParallelBatchPlacement(m=4),
        "op": ObjectProbabilityPlacement(),
        "cp": ClusterProbabilityPlacement(),
    }[request.param]
    return scheme.place(workload, spec)


class TestEstimateStructure:
    def test_components_sum_to_response(self, placement, workload, spec):
        model = CostModel(placement, spec)
        for request in list(workload.requests)[:10]:
            est = model.estimate(request)
            assert est.switch_s + est.seek_s + est.transfer_s == pytest.approx(
                est.response_s, rel=1e-9
            )
            assert est.response_s > 0

    def test_mounted_only_request_has_no_switch(self, placement, workload, spec):
        model = CostModel(placement, spec)
        for request in workload.requests:
            est = model.estimate(request)
            if est.num_offline_tapes == 0:
                assert est.switch_s == 0.0

    def test_offline_tapes_imply_switch_time(self, placement, workload, spec):
        model = CostModel(placement, spec)
        hits = 0
        for request in workload.requests:
            est = model.estimate(request)
            if est.num_offline_tapes > 0 and est.switch_s > 0:
                hits += 1
        # at least some requests exercise the switch path at this scale
        assert hits > 0 or all(
            model.estimate(r).num_offline_tapes == 0 for r in workload.requests
        )


class TestAgreementWithSimulator:
    def test_tracks_simulated_response(self, placement, workload, spec):
        """From the initial mount state, the estimate stays within a factor
        of 2 of the simulator per request and within 30% on average."""
        model = CostModel(placement, spec)
        session = SimulationSession(workload, spec, placement=placement)
        ratios = []
        for request in list(workload.requests)[:25]:
            est = model.estimate(request).response_s
            sim = session.serve(request).response_s
            session.reset()  # the model assumes the initial mounts
            ratios.append(est / sim)
        ratios = np.asarray(ratios)
        assert 0.5 <= ratios.mean() <= 1.35
        assert np.all(ratios > 0.4)
        assert np.all(ratios < 2.5)

    def test_preserves_scheme_ranking(self, workload, spec):
        """The model must rank the three schemes like the simulator does."""
        objectives = {}
        for scheme in (
            ParallelBatchPlacement(m=4),
            ObjectProbabilityPlacement(),
            ClusterProbabilityPlacement(),
        ):
            placement = scheme.place(workload, spec)
            model = CostModel(placement, spec)
            objectives[scheme.name] = model.average_response(
                list(workload.requests), workload.requests.probabilities
            )
        assert objectives["parallel_batch"] < objectives["object_probability"]
        assert objectives["parallel_batch"] < objectives["cluster_probability"]


class TestAverageResponse:
    def test_weighted_vs_unweighted(self, workload, spec):
        placement = ParallelBatchPlacement(m=4).place(workload, spec)
        model = CostModel(placement, spec)
        requests = list(workload.requests)
        uniform = model.average_response(requests)
        weighted = model.average_response(requests, workload.requests.probabilities)
        assert uniform > 0 and weighted > 0
        # popularity weighting favors hot (better-placed) requests
        assert weighted <= uniform * 1.2
