"""Tests for the self-contained HTML fleet dashboard.

The dashboard's contract is structural, not pixel-level: one valid,
dependency-free HTML document that carries the fleet's KPIs, the latency
percentile table, the SLO verdict table (icon + label, never color alone),
and — when a snapshot time series is supplied — the drives-down timeline
with its table fallback.
"""

from html.parser import HTMLParser

import pytest

from repro.obs import (
    FleetRegistry,
    MetricsRegistry,
    evaluate_slos,
    export_registry,
    parse_slos,
    render_dashboard,
    write_dashboard,
)

_VOID = {
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "source", "track", "wbr",
}


class _StructureChecker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.problems = []
        self.ids = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)
        for name, value in attrs:
            if name == "id":
                self.ids.append(value)
            if name in ("src", "href") and value and value.startswith(
                ("http://", "https://", "//")
            ):
                self.problems.append(f"external reference: {value}")

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.problems.append(f"mismatched </{tag}> (stack: {self.stack[-5:]})")
        else:
            self.stack.pop()


def _check_html(doc: str) -> _StructureChecker:
    checker = _StructureChecker()
    checker.feed(doc)
    checker.close()
    assert not checker.problems, checker.problems
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker


@pytest.fixture()
def fleet():
    reg = MetricsRegistry()
    reg.counter("requests.completed", unit="requests").inc(48)
    reg.counter("requests.aborted", unit="requests").inc(1)
    reg.counter("tape.switches", unit="switches").inc(17)
    reg.counter("sweep.cache_hits").inc(5)
    reg.counter("sweep.cache_misses").inc(3)
    for name in ("latency.sojourn_s", "latency.seek_s"):
        d = reg.digest(name, unit="s")
        for v in range(1, 49):
            d.record(float(v))
    f = FleetRegistry()
    snap = export_registry(reg)
    snap["counters"]["fleet.horizon_s"] = 7200.0
    snap["counters"]["fleet.availability_weighted_s"] = 6480.0
    snap["point"] = {"sweep": "fig6", "axis": "alpha", "value": 0.3,
                     "scheme": "parallel_batch", "kind": "open", "replicate": 0}
    f.fold(snap)
    return f


def _snapshots():
    """A registry snapshot series with a drives-down gauge."""
    return [
        {"t_s": float(t), "counters": {"requests.completed": t // 60},
         "gauges": {"faults.drives_down": (t // 600) % 3}}
        for t in range(0, 3600, 300)
    ]


class TestDocumentStructure:
    def test_valid_self_contained_html(self, fleet):
        doc = render_dashboard(fleet)
        assert doc.lstrip().startswith("<!DOCTYPE html>")
        _check_html(doc)

    def test_no_nan_leaks_into_markup(self, fleet):
        empty = FleetRegistry()  # everything NaN/absent
        for doc in (render_dashboard(fleet), render_dashboard(empty)):
            assert "NaN" not in doc and "nan" not in doc.split("<style>")[0]

    def test_kpis_present(self, fleet):
        doc = render_dashboard(fleet)
        assert "Requests completed" in doc
        assert "48" in doc
        assert "90.000%" in doc  # availability tile (horizon present)

    def test_latency_percentile_table(self, fleet):
        doc = render_dashboard(fleet)
        assert "Sojourn" in doc and "Seek" in doc
        assert "p99" in doc and "p50" in doc

    def test_dark_mode_palette_declared(self, fleet):
        doc = render_dashboard(fleet)
        assert "prefers-color-scheme: dark" in doc
        assert "--surface-1" in doc


class TestSloSection:
    def test_verdicts_render_with_icon_and_label(self, fleet):
        verdicts = evaluate_slos(
            parse_slos(["availability >= 0.85", "aborted_requests == 0"]), fleet
        )
        doc = render_dashboard(fleet, verdicts=verdicts)
        _check_html(doc)
        # Status is icon + text label, never color alone.
        assert "✗" in doc and "FAIL" in doc
        assert "✓" in doc and "PASS" in doc
        assert "availability &gt;= 0.85" in doc or "availability >= 0.85" in doc

    def test_no_slo_section_without_verdicts(self, fleet):
        assert "objectives met" not in render_dashboard(fleet)


class TestTimeline:
    def test_timeline_svg_and_table_fallback(self, fleet):
        doc = render_dashboard(fleet, snapshots=_snapshots())
        _check_html(doc)
        assert "<svg" in doc
        assert "Drives down" in doc
        assert "<details" in doc  # table view fallback

    def test_timeline_skipped_without_gauge_series(self, fleet):
        snaps = [{"t_s": 0.0, "gauges": {}}, {"t_s": 60.0, "gauges": {}}]
        doc = render_dashboard(fleet, snapshots=snaps)
        assert "<svg" not in doc


class TestWriteDashboard:
    def test_write_round_trip(self, fleet, tmp_path):
        path = tmp_path / "report.html"
        doc = write_dashboard(fleet, path, title="unit test report")
        assert path.read_text() == doc
        assert "unit test report" in doc
