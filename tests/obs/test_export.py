"""Tests for the Chrome/Perfetto trace exporter and metrics JSONL dump."""

import pytest

from repro.des import Environment, Span
from repro.obs import (
    MetricsRegistry,
    read_metrics_jsonl,
    spans_from_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)


def _sample_spans():
    return [
        Span("request", 0.0, 90.0, {"catalog_id": 3}, span_id=1, request_id=7),
        Span("queue_wait", 0.0, 5.0, {}, span_id=2, parent_id=1, request_id=7),
        Span("tape_job", 5.0, 90.0, {"tape": 12}, span_id=3, parent_id=1, request_id=7),
        Span(
            "robot_exchange", 5.0, 9.0, {"drive": "L0.D1"},
            span_id=4, parent_id=3, request_id=7,
        ),
        Span(
            "seek", 9.0, 20.0, {"drive": "L0.D1", "object": 42},
            span_id=5, parent_id=3, request_id=7,
        ),
        Span(
            "transfer", 20.0, 90.0, {"drive": "L0.D1", "object": 42},
            span_id=6, parent_id=3, request_id=7,
        ),
        Span(
            "drive_failure", 40.0, 40.0, {"drive": "L0.D1"},
            span_id=7, parent_id=3, request_id=7,
        ),
    ]


class TestChromeTrace:
    def test_round_trip_is_lossless(self):
        spans = _sample_spans()
        restored = spans_from_chrome_trace(to_chrome_trace(spans))
        assert sorted(restored, key=lambda s: s.span_id) == spans

    def test_write_round_trips_through_disk(self, tmp_path):
        import json

        spans = _sample_spans()
        path = tmp_path / "trace.json"
        write_chrome_trace(spans, path)
        restored = spans_from_chrome_trace(json.loads(path.read_text()))
        assert sorted(restored, key=lambda s: s.span_id) == spans

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(_sample_spans())
        seek = next(e for e in doc["traceEvents"] if e["name"] == "seek")
        assert seek["ph"] == "X"
        assert seek["ts"] == pytest.approx(9.0 * 1e6)
        assert seek["dur"] == pytest.approx(11.0 * 1e6)

    def test_zero_duration_span_becomes_instant(self):
        doc = to_chrome_trace(_sample_spans())
        failure = next(e for e in doc["traceEvents"] if e["name"] == "drive_failure")
        assert failure["ph"] == "i"
        assert "dur" not in failure

    def test_robot_spans_get_the_library_arm_track(self):
        doc = to_chrome_trace(_sample_spans())
        tracks = {
            e["args"]["name"]: (e["pid"], e["tid"])
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert "L0.robot" in tracks and "L0.D1" in tracks
        exchange = next(e for e in doc["traceEvents"] if e["name"] == "robot_exchange")
        assert (exchange["pid"], exchange["tid"]) == tracks["L0.robot"]
        seek = next(e for e in doc["traceEvents"] if e["name"] == "seek")
        assert (seek["pid"], seek["tid"]) == tracks["L0.D1"]

    def test_request_spans_get_per_request_tracks(self):
        doc = to_chrome_trace(_sample_spans())
        root = next(e for e in doc["traceEvents"] if e["name"] == "request")
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names[(root["pid"], root["tid"])] == "request 7"


class TestValidateChromeTrace:
    def test_valid_document_has_no_problems(self):
        assert validate_chrome_trace(to_chrome_trace(_sample_spans())) == []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["document has no traceEvents list"]

    def test_dangling_parent_reported(self):
        spans = _sample_spans()
        spans.append(Span("seek", 1.0, 2.0, {}, span_id=99, parent_id=1234, request_id=7))
        problems = validate_chrome_trace(to_chrome_trace(spans))
        assert any("parent 1234 does not exist" in p for p in problems)

    def test_negative_duration_reported(self):
        doc = to_chrome_trace(_sample_spans())
        seek = next(e for e in doc["traceEvents"] if e["name"] == "seek")
        seek["dur"] = -5.0
        seek["args"]["end_s"] = seek["args"]["start_s"] - 1.0
        problems = validate_chrome_trace(doc)
        assert any("negative dur" in p for p in problems)
        assert any("end_s" in p for p in problems)

    def test_request_without_root_reported(self):
        spans = [Span("seek", 0.0, 1.0, {"drive": "L0.D0"}, span_id=1, request_id=5)]
        problems = validate_chrome_trace(to_chrome_trace(spans))
        assert any("request 5 has spans but no 'request' root span" in p for p in problems)


class TestMetricsJsonl:
    def test_round_trip(self, tmp_path):
        env = Environment()
        reg = MetricsRegistry()
        reg.counter("switches", unit="switches").inc(4)
        gauge = reg.gauge("in_flight", unit="requests")

        def workload():
            gauge.add(1, now=env.now)
            yield env.timeout(5.0)
            gauge.add(-1, now=env.now)

        env.process(workload())
        reg.install_sampler(env, period_s=2.0)
        env.run()

        path = tmp_path / "metrics.jsonl"
        lines = write_metrics_jsonl(reg, path)
        units, snapshots = read_metrics_jsonl(path)
        # meta + snapshots + trailing registry_export record
        assert lines == 2 + len(snapshots)
        assert units == {"switches": "switches", "in_flight": "requests"}
        assert snapshots[0]["counters"]["switches"] == 4
        assert [s["t_s"] for s in snapshots] == [0.0, 2.0, 4.0, 6.0]
        assert [s["gauges"]["in_flight"] for s in snapshots] == [1, 1, 1, 0]
