"""Tests for the declarative SLO layer (parse, evaluate, format)."""

import math

import pytest

from repro.obs import (
    DEFAULT_CHAOS_SLOS,
    FleetRegistry,
    MetricsRegistry,
    evaluate_slos,
    export_registry,
    format_verdicts,
    parse_slo,
    parse_slos,
    slos_pass,
)


@pytest.fixture()
def fleet():
    reg = MetricsRegistry()
    reg.counter("requests.completed", unit="requests").inc(100)
    reg.counter("requests.aborted", unit="requests").inc(2)
    reg.counter("tape.switches", unit="switches").inc(40)
    reg.counter("sweep.cache_hits").inc(3)
    reg.counter("sweep.cache_misses").inc(1)
    d = reg.digest("latency.sojourn_s", unit="s")
    for v in range(1, 101):  # 1..100 s
        d.record(float(v))
    f = FleetRegistry()
    snap = export_registry(reg)
    snap["counters"]["fleet.horizon_s"] = 1000.0
    snap["counters"]["fleet.availability_weighted_s"] = 950.0
    f.fold(snap)
    return f


class TestParsing:
    def test_quantile_metric(self):
        slo = parse_slo("p99_sojourn <= 120")
        assert (slo.metric, slo.op, slo.threshold) == ("p99_sojourn", "<=", 120.0)

    def test_all_operators_parse(self):
        for op in ("<=", "<", ">=", ">", "==", "!="):
            assert parse_slo(f"availability {op} 0.5").op == op

    def test_scientific_threshold(self):
        assert parse_slo("mean_seek < 1.5e2").threshold == 150.0

    def test_dotted_counter_name(self):
        assert parse_slo("tape.switches <= 50").metric == "tape.switches"

    def test_garbage_rejected(self):
        for bad in ("p99_sojourn", "<= 120", "p99_sojourn <= twelve", ""):
            with pytest.raises(ValueError):
                parse_slo(bad)

    def test_fractional_quantile_parses(self):
        slo = parse_slo("p99.9_sojourn <= 1e9")
        assert slo.metric == "p99.9_sojourn"

    def test_string_split_on_commas_and_semicolons(self):
        slos = parse_slos("availability >= 0.99; aborted_requests == 0,p50_seek < 60")
        assert [s.metric for s in slos] == [
            "availability", "aborted_requests", "p50_seek",
        ]

    def test_default_chaos_slos_parse(self):
        assert len(parse_slos(list(DEFAULT_CHAOS_SLOS))) == 2


class TestEvaluation:
    def test_quantile_objective(self, fleet):
        ok = parse_slo("p50_sojourn <= 60").evaluate(fleet)
        assert ok.passed and 45 <= ok.observed <= 55
        bad = parse_slo("p99_sojourn <= 60").evaluate(fleet)
        assert not bad.passed

    def test_aliases_and_verbatim_digest_names_agree(self, fleet):
        alias = parse_slo("p95_sojourn <= 1e9").evaluate(fleet).observed
        verbatim = parse_slo("p95_latency.sojourn_s <= 1e9").evaluate(fleet).observed
        assert alias == verbatim

    def test_mean_max_count(self, fleet):
        assert parse_slo("mean_sojourn <= 51").evaluate(fleet).passed
        assert parse_slo("max_sojourn == 100").evaluate(fleet).passed
        assert parse_slo("count_sojourn == 100").evaluate(fleet).passed

    def test_availability(self, fleet):
        v = parse_slo("availability >= 0.94").evaluate(fleet)
        assert v.passed and v.observed == pytest.approx(0.95)
        assert not parse_slo("availability >= 0.96").evaluate(fleet).passed

    def test_aborted_and_cache_and_counters(self, fleet):
        assert not parse_slo("aborted_requests == 0").evaluate(fleet).passed
        assert parse_slo("aborted_requests <= 2").evaluate(fleet).passed
        assert parse_slo("cache_hit_rate >= 0.75").evaluate(fleet).passed
        assert parse_slo("tape.switches <= 40").evaluate(fleet).passed

    def test_missing_metric_fails_with_detail(self, fleet):
        verdict = parse_slo("p99_no_such_digest <= 5").evaluate(fleet)
        assert not verdict.passed
        assert math.isnan(verdict.observed)
        assert "absent" in verdict.detail

    def test_missing_metric_fails_even_with_lenient_op(self, fleet):
        # NaN comparisons are false for every operator — an SLO against
        # unrecorded telemetry is a misconfiguration, never a pass.
        assert not parse_slo("no.such.counter >= 0").evaluate(fleet).passed

    def test_to_dict_is_jsonable(self, fleet):
        import json

        verdicts = evaluate_slos(parse_slos("availability >= 0.9"), fleet)
        doc = json.dumps([v.to_dict() for v in verdicts])
        assert "availability" in doc


class TestFormatting:
    def test_report_orders_failures_first(self, fleet):
        verdicts = evaluate_slos(
            parse_slos(["availability >= 0.9", "aborted_requests == 0"]), fleet
        )
        text = format_verdicts(verdicts)
        lines = text.splitlines()
        assert lines[0].startswith("FAIL")
        assert lines[-1] == "1/2 objectives met, 1 FAILED"
        assert not slos_pass(verdicts)

    def test_all_passing_summary(self, fleet):
        verdicts = evaluate_slos(parse_slos("availability >= 0.9"), fleet)
        assert format_verdicts(verdicts).endswith("1/1 objectives met")
        assert slos_pass(verdicts)

    def test_empty(self):
        assert format_verdicts([]) == "(no objectives)"
        assert slos_pass([])
