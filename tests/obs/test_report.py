"""Tests for critical-path stage attribution and the text flame report."""

import pytest

from repro.des import Span
from repro.obs import StageReport, attribute_requests, render_request_flame
from repro.obs.report import SWITCH_STAGES, STAGE_ORDER


def _single_drive_tree():
    """request 7: 10s queue wait, then one tape job on L0.D0.

    The switch stages cover 30 of the 40 switch seconds, so 10s of the
    critical path is unattributed ("blocked").
    """
    return [
        Span("request", 0.0, 100.0, {}, span_id=1, request_id=7),
        Span("queue_wait", 0.0, 10.0, {}, span_id=2, parent_id=1, request_id=7),
        Span("tape_job", 10.0, 100.0, {}, span_id=3, parent_id=1, request_id=7),
        Span("switch", 10.0, 40.0, {"drive": "L0.D0"}, span_id=4, parent_id=3, request_id=7),
        Span("load", 15.0, 35.0, {"drive": "L0.D0"}, span_id=5, parent_id=4, request_id=7),
        Span("seek", 40.0, 50.0, {"drive": "L0.D0"}, span_id=6, parent_id=3, request_id=7),
        Span("transfer", 50.0, 100.0, {"drive": "L0.D0"}, span_id=7, parent_id=3, request_id=7),
    ]


def _two_drive_tree():
    """request 9: two parallel tape jobs; L1.D1 finishes last (critical)."""
    return [
        Span("request", 0.0, 95.0, {}, span_id=10, request_id=9),
        Span("tape_job", 0.0, 80.0, {}, span_id=11, parent_id=10, request_id=9),
        Span("seek", 0.0, 10.0, {"drive": "L1.D0"}, span_id=12, parent_id=11, request_id=9),
        Span("transfer", 10.0, 80.0, {"drive": "L1.D0"}, span_id=13, parent_id=11, request_id=9),
        Span("tape_job", 0.0, 95.0, {}, span_id=14, parent_id=10, request_id=9),
        Span("seek", 0.0, 15.0, {"drive": "L1.D1"}, span_id=15, parent_id=14, request_id=9),
        Span("transfer", 15.0, 95.0, {"drive": "L1.D1"}, span_id=16, parent_id=14, request_id=9),
    ]


class TestAttributeRequests:
    def test_stage_taxonomy_is_consistent(self):
        assert SWITCH_STAGES == frozenset(STAGE_ORDER) - {"seek", "transfer"}

    def test_single_drive_decomposition(self):
        report = attribute_requests(_single_drive_tree())
        assert len(report) == 1
        req = report.requests[0]
        assert req.request_id == 7
        assert req.critical_drive == "L0.D0"
        assert req.response_s == 100.0
        assert req.seek_s == 10.0
        assert req.transfer_s == 50.0
        assert req.switch_s == 40.0  # response - seek - transfer
        # queue_wait (10) + load (20) cover 30 of the 40 switch seconds.
        assert req.stages["queue_wait"] == 10.0
        assert req.stages["load"] == 20.0
        assert req.blocked_s == pytest.approx(10.0)
        assert req.top_stage == "transfer"

    def test_critical_drive_is_the_last_to_finish(self):
        report = attribute_requests(_two_drive_tree())
        req = report.requests[0]
        assert req.critical_drive == "L1.D1"
        # Only the critical drive's stages are attributed.
        assert req.seek_s == 15.0
        assert req.transfer_s == 80.0
        assert req.switch_s == 0.0

    def test_aborted_spans_are_excluded(self):
        spans = _single_drive_tree()
        spans.append(
            Span(
                "seek", 40.0, 45.0, {"drive": "L0.D0", "aborted": True},
                span_id=8, parent_id=3, request_id=7,
            )
        )
        report = attribute_requests(spans)
        assert report.requests[0].seek_s == 10.0  # unchanged

    def test_request_without_root_is_skipped(self):
        spans = [Span("seek", 0.0, 1.0, {"drive": "L0.D0"}, span_id=1, request_id=3)]
        assert len(attribute_requests(spans)) == 0


class TestStageReport:
    def test_totals_and_means_aggregate_requests(self):
        report = attribute_requests(_single_drive_tree() + _two_drive_tree())
        totals = report.totals()
        assert totals["seek"] == 10.0 + 15.0
        assert totals["transfer"] == 50.0 + 80.0
        assert totals["response"] == 100.0 + 95.0
        means = report.means()
        assert means["seek"] == pytest.approx(totals["seek"] / 2)
        assert report.avg_response_s == pytest.approx(97.5)
        assert report.avg_switch_s == pytest.approx(
            report.avg_response_s - report.avg_seek_s - report.avg_transfer_s
        )

    def test_top_stage_counts(self):
        report = attribute_requests(_single_drive_tree() + _two_drive_tree())
        assert report.top_stage_counts() == {"transfer": 2}

    def test_empty_report(self):
        report = StageReport()
        assert report.means() == {}
        assert report.avg_response_s != report.avg_response_s  # NaN

    def test_format_lists_active_stages(self):
        text = attribute_requests(_single_drive_tree(), label="unit").format()
        assert "Stage attribution (1 requests, unit)" in text
        for stage in ("queue_wait", "load", "seek", "transfer", "blocked", "response"):
            assert stage in text
        assert "rewind" not in text  # zero-total stages are omitted


class TestRenderRequestFlame:
    def test_flame_shows_tree_with_durations(self):
        text = render_request_flame(_single_drive_tree(), request_id=7)
        assert text.startswith("request 7: 100.0 s sojourn")
        lines = text.splitlines()
        # Children indent under their parents in causal order.
        assert any("queue_wait" in line for line in lines)
        load_line = next(line for line in lines if "load" in line)
        switch_line = next(line for line in lines if "switch" in line)
        assert load_line.index("load") > switch_line.index("switch")
        assert "L0.D0" in load_line

    def test_flame_marks_aborted_spans(self):
        spans = _single_drive_tree()
        spans.append(
            Span(
                "seek", 40.0, 45.0, {"drive": "L0.D0", "aborted": True},
                span_id=8, parent_id=3, request_id=7,
            )
        )
        text = render_request_flame(spans, request_id=7)
        assert "seek (aborted)" in text

    def test_flame_without_root(self):
        assert "no request root span" in render_request_flame([], request_id=1)
