"""Tests for cross-process fleet telemetry: export, merge, persistence, feed.

The load-bearing property is **order-insensitive merging**: folding the
same snapshots in any order yields identical fleet aggregates (exactly so
for integer counts and digest buckets, up to float-addition rounding for
running sums).  Everything else — JSONL persistence, the metrics-file
round-trip under a fault workload, the live feed — layers on that.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.obs import (
    FleetFeed,
    FleetRegistry,
    MetricsRegistry,
    export_registry,
    read_fleet_jsonl,
    snapshot_of_result,
    write_fleet_jsonl,
    write_metrics_jsonl,
)
from repro.placement import ParallelBatchPlacement
from repro.sim import DriveFaultProcess, SimulationSession
from repro.workload import generate_workload


def _registry_snapshot(seed: int):
    """A synthetic exported snapshot with every metric kind populated."""
    reg = MetricsRegistry()
    reg.counter("requests.completed", unit="requests").inc(seed + 3)
    reg.counter("tape.switches", unit="switches").inc(2 * seed + 1)
    g = reg.gauge("requests.in_flight", unit="requests")
    g.add(1, now=0.0)
    g.add(-1, now=float(seed + 1))
    d = reg.digest("latency.sojourn_s", unit="s")
    for i in range(seed + 2):
        d.record(10.0 * (i + 1) + seed)
    return export_registry(reg)


def _assert_aggregates_equal(a, b, exact=True):
    """Fleet aggregate equality, exact on integer state, approx on floats."""
    assert a["digests"].keys() == b["digests"].keys()
    for name in a["digests"]:
        da, db = dict(a["digests"][name]), dict(b["digests"][name])
        sa, sb = da.pop("sum"), db.pop("sum")
        assert da == db, name
        assert sa == pytest.approx(sb, rel=1e-9)
    assert a["counters"].keys() == b["counters"].keys()
    for name in a["counters"]:
        if exact:
            assert a["counters"][name] == b["counters"][name], name
        else:
            assert a["counters"][name] == pytest.approx(b["counters"][name])
    assert a["histograms"] == b["histograms"]
    assert a["gauges"].keys() == b["gauges"].keys()
    for name in a["gauges"]:
        for key in ("value", "min", "max"):
            assert a["gauges"][name][key] == b["gauges"][name][key]
        for key in ("integral", "elapsed_s"):
            assert a["gauges"][name][key] == pytest.approx(
                b["gauges"][name][key], rel=1e-9
            )


class TestFoldOrderInsensitivity:
    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(6))))
    def test_any_fold_order_gives_identical_aggregates(self, order):
        snapshots = [_registry_snapshot(i) for i in range(6)]
        reference = FleetRegistry()
        for snap in snapshots:
            reference.fold(snap)
        permuted = FleetRegistry()
        for index in order:
            permuted.fold(snapshots[index])
        _assert_aggregates_equal(permuted.aggregates(), reference.aggregates())

    def test_merge_of_two_fleets_equals_single_fold(self):
        snapshots = [_registry_snapshot(i) for i in range(4)]
        whole = FleetRegistry()
        for snap in snapshots:
            whole.fold(snap)
        left, right = FleetRegistry(), FleetRegistry()
        for snap in snapshots[:2]:
            left.fold(snap)
        for snap in snapshots[2:]:
            right.fold(snap)
        left.merge(right)
        _assert_aggregates_equal(left.aggregates(), whole.aggregates())

    def test_histogram_bounds_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("h", bounds=(1.0, 3.0))
        fleet = FleetRegistry()
        fleet.fold(export_registry(reg))
        with pytest.raises(ValueError, match="bounds mismatch"):
            fleet.fold(export_registry(other))


class TestFleetViews:
    def test_availability_is_horizon_weighted(self):
        fleet = FleetRegistry()
        # 1000 s at 100% + 3000 s at 60% -> (1000 + 1800) / 4000 = 70%.
        fleet.fold({"counters": {
            "fleet.horizon_s": 1000.0, "fleet.availability_weighted_s": 1000.0,
        }})
        fleet.fold({"counters": {
            "fleet.horizon_s": 3000.0, "fleet.availability_weighted_s": 1800.0,
        }})
        assert fleet.availability == pytest.approx(0.7)

    def test_availability_defaults_to_one_without_fault_surface(self):
        assert FleetRegistry().availability == 1.0

    def test_cache_hit_rate(self):
        fleet = FleetRegistry()
        assert math.isnan(fleet.cache_hit_rate)
        fleet.fold({"counters": {"sweep.cache_hits": 3, "sweep.cache_misses": 1}})
        assert fleet.cache_hit_rate == pytest.approx(0.75)

    def test_quantile_of_missing_digest_is_nan(self):
        assert math.isnan(FleetRegistry().quantile("latency.sojourn_s", 99))

    def test_summary_headlines(self):
        fleet = FleetRegistry()
        fleet.fold(_registry_snapshot(1))
        summary = fleet.summary()
        assert summary["requests_completed"] == 4.0
        assert "latency.sojourn_s" in summary


class TestFleetJsonl:
    def test_round_trip_reproduces_aggregates_exactly(self, tmp_path):
        fleet = FleetRegistry()
        for i in range(5):
            snap = _registry_snapshot(i)
            snap["point"] = {"sweep": "t", "axis": "alpha", "value": i / 4}
            fleet.fold(snap)
        path = tmp_path / "fleet.jsonl"
        lines = write_fleet_jsonl(fleet, path)
        assert lines == 1 + 5  # fleet_meta + one line per snapshot
        restored = read_fleet_jsonl(path)
        assert restored.aggregates() == fleet.aggregates()
        assert restored.points == fleet.points

    def test_reading_twice_and_merging_doubles_counters(self, tmp_path):
        fleet = FleetRegistry().fold(_registry_snapshot(2))
        path = tmp_path / "fleet.jsonl"
        write_fleet_jsonl(fleet, path)
        doubled = read_fleet_jsonl(path).merge(read_fleet_jsonl(path))
        assert doubled.counter("requests.completed") == 2 * fleet.counter(
            "requests.completed"
        )


class TestMetricsJsonlFaultRoundTrip:
    """Satellite: metrics JSONL from a fault-injected run re-imports into
    the same fleet aggregates (A11-style chaos workload)."""

    @pytest.fixture(scope="class")
    def chaos_result(self):
        workload = generate_workload(
            num_objects=400,
            num_requests=25,
            request_size_bounds=(5, 12),
            object_size_bounds_mb=(10.0, 500.0),
            mean_object_size_mb=120.0,
            seed=21,
        )
        spec = SystemSpec(
            num_libraries=2,
            library=LibrarySpec(
                num_drives=3,
                num_tapes=10,
                drive=DriveSpec(),
                tape=TapeSpec(capacity_mb=10_000.0),
            ),
        )
        session = SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=2)
        )
        opensys = session.open(
            policy="concurrent",
            faults=(DriveFaultProcess(mtbf_s=2000.0, mttr_s=600.0),),
            fault_seed=11,
        )
        return opensys.run(
            20.0, num_arrivals=30, seed=5, sample_period_s=300.0
        )

    def test_export_reimport_merge_is_identical(self, chaos_result, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(chaos_result.registry, path)

        direct = FleetRegistry().fold(export_registry(chaos_result.registry))
        reimported = read_fleet_jsonl(path)
        assert reimported.aggregates() == direct.aggregates()

    def test_availability_survives_the_round_trip(self, chaos_result, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(chaos_result.registry, path)
        reimported = read_fleet_jsonl(path)
        assert reimported.availability == pytest.approx(
            chaos_result.availability
        )
        assert reimported.availability < 1.0  # faults actually bit

    def test_snapshot_of_result_matches_registry_export(self, chaos_result):
        """The worker-side snapshot is the registry export plus bookkeeping
        the run itself already published — not a divergent view."""
        snap = snapshot_of_result(chaos_result)
        direct = export_registry(chaos_result.registry)
        assert snap["counters"] == direct["counters"]
        assert snap["digests"] == direct["digests"]


class TestFleetFeed:
    def test_emit_drain_round_trip(self):
        with FleetFeed() as feed:
            feed.emit({"type": "point_start", "point": "a"})
            feed.emit({"type": "progress", "point": "a", "completed": 3})
            records = feed.drain()
        assert [r["type"] for r in records] == ["point_start", "progress"]
        assert feed.emitted == 2

    def test_drain_empty_is_empty(self):
        with FleetFeed() as feed:
            assert feed.drain() == []

    def test_emit_after_close_is_swallowed(self):
        feed = FleetFeed()
        feed.close()
        feed.emit({"type": "progress"})  # must not raise


class TestSyntheticSnapshots:
    def test_closed_loop_results_synthesize_digests(self):
        class FakeMetrics:
            def __init__(self, r, s, w, t):
                self.response_s = r
                self.seek_s = s
                self.switch_s = w
                self.transfer_s = t

        class FakeResult:
            samples = [FakeMetrics(10.0, 2.0, 3.0, 5.0),
                       FakeMetrics(20.0, 4.0, -1e-12, 16.0)]

        snap = snapshot_of_result(FakeResult(), point_meta={"kind": "closed"})
        assert snap["counters"]["requests.completed"] == 2
        assert snap["point"] == {"kind": "closed"}
        sojourn = snap["digests"]["latency.sojourn_s"]
        assert sojourn["count"] == 2
        # The negative rounding artifact lands in the zero bucket.
        assert snap["digests"]["latency.switch_s"]["zero_count"] == 1

    def test_snapshot_is_json_serializable(self):
        snap = _registry_snapshot(3)
        restored = json.loads(json.dumps(snap))
        fleet_a = FleetRegistry().fold(snap)
        fleet_b = FleetRegistry().fold(restored)
        assert fleet_a.aggregates() == fleet_b.aggregates()
