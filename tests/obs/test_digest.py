"""Tests for the mergeable bounded-memory quantile digest.

The digest backs fleet percentiles, so its two contracts matter more than
its internals: quantiles stay within the configured *relative* error of the
exact sample quantile, and merging digests is exactly equivalent to having
recorded every sample into one digest (the property cross-process
aggregation rests on).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileDigest

positive_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestAccuracy:
    def test_empty_digest_is_nan(self):
        d = QuantileDigest("t")
        assert math.isnan(d.quantile(50))
        assert len(d) == 0

    def test_single_value(self):
        d = QuantileDigest("t")
        d.record(42.0)
        assert d.quantile(0) == pytest.approx(42.0, rel=0.02)
        assert d.quantile(100) == pytest.approx(42.0, rel=0.02)
        assert d.min == 42.0 and d.max == 42.0

    def test_negative_values_rejected(self):
        d = QuantileDigest("t")
        with pytest.raises(ValueError):
            d.record(-1.0)

    @pytest.mark.parametrize("q", [10, 50, 90, 95, 99])
    def test_relative_error_bound_lognormal(self, q):
        # Latencies are roughly lognormal; the digest guarantees
        # |estimate - exact| <= rel_err * exact for every quantile.
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=4.0, sigma=1.5, size=5000)
        d = QuantileDigest("t", rel_err=0.01)
        for v in samples:
            d.record(float(v))
        exact = float(np.quantile(samples, q / 100.0, method="lower"))
        assert d.quantile(q) == pytest.approx(exact, rel=0.025)

    def test_mean_and_count_are_exact(self):
        values = [1.0, 10.0, 100.0, 1000.0]
        d = QuantileDigest("t")
        for v in values:
            d.record(v)
        assert d.count == len(values)
        assert d.mean == pytest.approx(sum(values) / len(values))

    def test_zero_values_tracked_exactly(self):
        d = QuantileDigest("t")
        for _ in range(10):
            d.record(0.0)
        d.record(5.0)
        assert d.quantile(50) == 0.0
        assert d.count == 11


class TestMerge:
    @settings(max_examples=50, deadline=None)
    @given(a=positive_samples, b=positive_samples)
    def test_merge_equals_concatenation(self, a, b):
        """merge(A, B) must give the same digest state as recording A + B."""
        left = QuantileDigest("t")
        right = QuantileDigest("t")
        both = QuantileDigest("t")
        for v in a:
            left.record(v)
            both.record(v)
        for v in b:
            right.record(v)
            both.record(v)
        left.merge(right)
        merged, direct = left.to_dict(), both.to_dict()
        # Bucket counts, extremes, and sample counts are *exactly* order-
        # insensitive; the float running sum only up to addition rounding.
        merged_sum, direct_sum = merged.pop("sum"), direct.pop("sum")
        assert merged == direct
        assert merged_sum == pytest.approx(direct_sum, rel=1e-12, abs=1e-12)

    def test_merge_requires_matching_rel_err(self):
        with pytest.raises(ValueError):
            QuantileDigest("t", rel_err=0.01).merge(QuantileDigest("t", rel_err=0.05))

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(3)
        xs, ys = rng.exponential(50.0, 100), rng.exponential(500.0, 100)
        ab, ba = QuantileDigest("t"), QuantileDigest("t")
        a1, b1 = QuantileDigest("t"), QuantileDigest("t")
        for v in xs:
            a1.record(float(v))
        for v in ys:
            b1.record(float(v))
        ab.merge(a1).merge(b1)
        ba.merge(b1).merge(a1)
        assert ab.to_dict() == ba.to_dict()


class TestSerialization:
    @settings(max_examples=50, deadline=None)
    @given(samples=positive_samples)
    def test_dict_round_trip_is_lossless(self, samples):
        d = QuantileDigest("t")
        for v in samples:
            d.record(v)
        restored = QuantileDigest.from_dict(d.to_dict())
        assert restored.to_dict() == d.to_dict()
        for q in (1, 50, 99):
            assert restored.quantile(q) == d.quantile(q)

    def test_round_trip_survives_json(self):
        import json

        d = QuantileDigest("t")
        for v in (0.0, 1.0, 17.5, 9000.0):
            d.record(v)
        restored = QuantileDigest.from_dict(json.loads(json.dumps(d.to_dict())))
        assert restored.to_dict() == d.to_dict()

    def test_summary_shape(self):
        d = QuantileDigest("t")
        for v in range(1, 101):
            d.record(float(v))
        s = d.summary()
        assert set(s) >= {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert s["count"] == 100
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]


class TestBoundedMemory:
    def test_bucket_count_stays_bounded(self):
        d = QuantileDigest("t", max_bins=128)
        rng = np.random.default_rng(0)
        for v in rng.lognormal(0.0, 4.0, size=20000):
            d.record(float(v))
        assert len(d.bins) <= 128
        # Collapsing the lowest buckets must never lose samples.
        assert d.count == 20000
