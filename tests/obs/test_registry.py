"""Tests for the metrics registry (counters, gauges, histograms, sampler)."""

import math

import pytest

from repro.des import Environment
from repro.obs import MetricsRegistry
from repro.obs.registry import Counter, Gauge, TimeWeightedHistogram


class TestCounter:
    def test_increments(self):
        c = Counter("switches")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("switches").inc(-1)


class TestGauge:
    def test_set_tracks_extremes(self):
        g = Gauge("depth")
        g.set(3, now=0.0)
        g.set(1, now=5.0)
        g.set(7, now=6.0)
        assert g.min == 1 and g.max == 7
        assert g.value == 7

    def test_add_is_relative(self):
        g = Gauge("in_flight")
        g.add(1, now=0.0)
        g.add(1, now=2.0)
        g.add(-1, now=3.0)
        assert g.value == 1

    def test_time_weighted_mean(self):
        g = Gauge("depth")
        g.set(2, now=0.0)
        g.set(4, now=10.0)  # value 2 held for 10s
        # 10s at 2, then 10s at 4 -> mean 3 over [0, 20].
        assert g.time_weighted_mean(now=20.0) == pytest.approx(3.0)

    def test_mean_without_observations_is_nan(self):
        assert math.isnan(Gauge("g").time_weighted_mean(5.0))


class TestTimeWeightedHistogram:
    def test_credits_elapsed_to_previous_value(self):
        h = TimeWeightedHistogram("queue", bounds=[0, 2])
        h.observe(0, now=0.0)
        h.observe(5, now=8.0)   # value 0 held 8s -> bucket (-inf, 0]
        h.observe(1, now=10.0)  # value 5 held 2s -> bucket (2, inf)
        assert h.bucket_s == [8.0, 0.0, 2.0]
        assert h.total_s == 10.0

    def test_fraction_at_most(self):
        h = TimeWeightedHistogram("queue", bounds=[0, 2])
        h.observe(1, now=0.0)
        h.observe(9, now=6.0)
        assert h.fraction_at_most(2, now=8.0) == pytest.approx(6.0 / 8.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            TimeWeightedHistogram("h", bounds=[2, 1])

    def test_rejects_non_edge_fraction_query(self):
        h = TimeWeightedHistogram("h", bounds=[1.0])
        with pytest.raises(ValueError):
            h.fraction_at_most(0.5)


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c", [1, 2]) is reg.histogram("c", [1, 2])

    def test_unit_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a", unit="requests")
        with pytest.raises(ValueError):
            reg.counter("a", unit="jobs")

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1, 2])
        with pytest.raises(ValueError):
            reg.histogram("h", [1, 3])

    def test_snapshot_freezes_readings(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.gauge("depth").set(5, now=1.0)
        snap = reg.snapshot(now=1.0)
        assert snap["t_s"] == 1.0
        assert snap["counters"]["hits"] == 2
        assert snap["gauges"]["depth"] == 5
        assert reg.snapshots == [snap]

    def test_units_view(self):
        reg = MetricsRegistry()
        reg.counter("a", unit="requests")
        reg.gauge("b", unit="slots")
        assert reg.units() == {"a": "requests", "b": "slots"}

    def test_sampler_snapshots_periodically_then_lets_env_drain(self):
        env = Environment()
        reg = MetricsRegistry()

        def workload():
            yield env.timeout(10.0)

        env.process(workload())
        reg.install_sampler(env, period_s=3.0)
        env.run()  # must terminate: the sampler parks when the queue drains
        times = [snap["t_s"] for snap in reg.snapshots]
        assert times == [0.0, 3.0, 6.0, 9.0, 12.0]

    def test_sampler_rejects_bad_period(self):
        with pytest.raises(ValueError):
            MetricsRegistry().install_sampler(Environment(), 0.0)
