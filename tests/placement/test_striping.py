"""Tests for fragment support and the striped placement baseline."""

import numpy as np
import pytest

from repro.catalog import LocationIndex, Request
from repro.hardware import (
    LibrarySpec,
    ObjectExtent,
    SystemSpec,
    TapeId,
    TapeSpec,
    TapeSystem,
)
from repro.placement import ObjectProbabilityPlacement, PlacementError, StripedPlacement
from repro.sim import SimulationSession, simulate_request
from repro.workload import generate_workload


class TestFragmentExtents:
    def test_defaults_are_whole_object(self):
        e = ObjectExtent(1, 0, 10)
        assert e.parts == 1 and e.part == 0
        assert not e.is_fragment

    def test_fragment_flags(self):
        e = ObjectExtent(1, 0, 10, part=2, parts=4)
        assert e.is_fragment

    def test_part_range_validated(self):
        with pytest.raises(ValueError):
            ObjectExtent(1, 0, 10, part=4, parts=4)
        with pytest.raises(ValueError):
            ObjectExtent(1, 0, 10, parts=0)


class TestIndexFragments:
    def test_whole_object_duplicate_rejected(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 10))
        with pytest.raises(ValueError):
            idx.add(1, TapeId(0, 1), ObjectExtent(1, 0, 10))

    def test_fragments_accumulate(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 5, part=0, parts=2))
        assert not idx.is_complete(1)
        idx.add(1, TapeId(0, 1), ObjectExtent(1, 0, 5, part=1, parts=2))
        assert idx.is_complete(1)
        assert len(idx.locate_all(1)) == 2

    def test_duplicate_fragment_rejected(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 5, part=0, parts=2))
        with pytest.raises(ValueError, match="indexed twice"):
            idx.add(1, TapeId(0, 1), ObjectExtent(1, 0, 5, part=0, parts=2))

    def test_inconsistent_parts_rejected(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 5, part=0, parts=2))
        with pytest.raises(ValueError, match="inconsistent"):
            idx.add(1, TapeId(0, 1), ObjectExtent(1, 0, 5, part=1, parts=3))

    def test_locate_refuses_striped(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 5, part=0, parts=2))
        with pytest.raises(ValueError, match="use locate_all"):
            idx.locate(1)

    def test_group_by_tape_includes_all_fragments(self):
        idx = LocationIndex()
        idx.add(1, TapeId(0, 0), ObjectExtent(1, 0, 5, part=0, parts=2))
        idx.add(1, TapeId(0, 1), ObjectExtent(1, 0, 5, part=1, parts=2))
        groups = idx.group_by_tape([1])
        assert set(groups) == {TapeId(0, 0), TapeId(0, 1)}


class TestFragmentSimulation:
    def test_striped_read_completes_with_last_fragment(self):
        """Two 50 MB fragments on two mounted tapes at 10 MB/s: the request
        finishes when both are read (5 s in parallel), not after one."""
        spec = SystemSpec(
            num_libraries=1,
            library=LibrarySpec(
                num_drives=2, num_tapes=4,
                tape=TapeSpec(capacity_mb=1000, max_rewind_s=10),
            ),
        )
        import dataclasses
        spec = dataclasses.replace(
            spec,
            library=dataclasses.replace(
                spec.library,
                drive=dataclasses.replace(spec.library.drive, transfer_rate_mb_s=10.0),
            ),
        )
        system = TapeSystem(spec)
        lib = system.library(0)
        lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 50, part=0, parts=2)])
        lib.tape(TapeId(0, 1)).write_layout([ObjectExtent(1, 0, 50, part=1, parts=2)])
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        lib.drives[1].mount(lib.tape(TapeId(0, 1)))
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1,), 1.0))
        assert m.size_mb == pytest.approx(100.0)  # both fragments counted
        assert m.response_s == pytest.approx(5.0)  # parallel, not 10 s
        assert m.num_tapes == 2


@pytest.fixture(scope="module")
def small_setup():
    # ~400 GB of data vs 160 GB of initially mounted capacity: requests
    # must switch tapes, which is where striping's cost shows.
    workload = generate_workload(
        num_objects=500,
        num_requests=30,
        request_size_bounds=(6, 15),
        object_size_bounds_mb=(50.0, 2000.0),
        mean_object_size_mb=800.0,
        seed=77,
    )
    spec = SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4, num_tapes=12, tape=TapeSpec(capacity_mb=20_000, max_rewind_s=10)
        ),
    )
    return workload, spec


class TestStripedPlacement:
    def test_validates_and_places_everything(self, small_setup):
        workload, spec = small_setup
        result = StripedPlacement(stripe_width=4, min_stripe_mb=500.0).place(workload, spec)
        result.validate(workload.catalog, spec)

    def test_large_objects_striped_small_kept_whole(self, small_setup):
        workload, spec = small_setup
        result = StripedPlacement(stripe_width=4, min_stripe_mb=500.0).place(workload, spec)
        parts_by_object = {}
        for extents in result.layouts.values():
            for e in extents:
                parts_by_object.setdefault(e.object_id, e.parts)
        sizes = np.asarray(workload.catalog.sizes_mb)
        for o, parts in parts_by_object.items():
            if sizes[o] >= 500.0:
                assert parts == 4
            else:
                assert parts == 1

    def test_fragments_on_distinct_tapes(self, small_setup):
        workload, spec = small_setup
        result = StripedPlacement(stripe_width=3, min_stripe_mb=500.0).place(workload, spec)
        homes = {}
        for tid, extents in result.layouts.items():
            for e in extents:
                homes.setdefault(e.object_id, []).append(tid)
        for tapes in homes.values():
            assert len(set(tapes)) == len(tapes)

    def test_width_exceeding_drives_rejected(self, small_setup):
        workload, spec = small_setup
        with pytest.raises(PlacementError):
            StripedPlacement(stripe_width=100).place(workload, spec)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripedPlacement(stripe_width=1)
        with pytest.raises(ValueError):
            StripedPlacement(min_stripe_mb=0)

    def test_end_to_end_simulation(self, small_setup):
        workload, spec = small_setup
        session = SimulationSession(
            workload, spec, scheme=StripedPlacement(stripe_width=3, min_stripe_mb=500.0)
        )
        result = session.evaluate(num_samples=15, seed=4)
        assert result.avg_bandwidth_mb_s > 0
        # request size still equals the whole objects' bytes
        for m in result.samples:
            assert m.size_mb > 0

    def test_striping_trades_transfer_for_switches(self, small_setup):
        """The paper's related-work claim: striping buys transfer time but
        pays in tape switches."""
        workload, spec = small_setup
        striped = SimulationSession(
            workload, spec, scheme=StripedPlacement(stripe_width=4, min_stripe_mb=300.0)
        ).evaluate(num_samples=20, seed=5)
        whole = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        ).evaluate(num_samples=20, seed=5)
        assert striped.avg_transfer_s < whole.avg_transfer_s
        assert striped.avg_switches_per_request > whole.avg_switches_per_request
