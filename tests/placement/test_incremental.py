"""Tests for epoch splitting and incremental (append-only) placement."""

import pytest

from repro.experiments import ExperimentSettings
from repro.placement import ParallelBatchPlacement
from repro.placement.incremental import (
    Epoch,
    IncrementalParallelBatch,
    split_into_epochs,
    subset_workload,
)
from repro.sim import SimulationSession
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(scale="small")


@pytest.fixture(scope="module")
def workload(settings):
    return generate_workload(settings.workload_params)


@pytest.fixture(scope="module")
def spec(settings):
    return settings.spec()


class TestSplitIntoEpochs:
    def test_every_object_in_exactly_one_epoch(self, workload):
        epochs = split_into_epochs(workload, 3)
        all_ids = [o for e in epochs for o in e.new_object_ids]
        assert sorted(all_ids) == list(range(workload.num_objects))

    def test_every_request_in_exactly_one_epoch(self, workload):
        epochs = split_into_epochs(workload, 4)
        all_reqs = [r for e in epochs for r in e.new_request_ids]
        assert sorted(all_reqs) == [r.id for r in workload.requests]

    def test_known_requests_accumulate(self, workload):
        epochs = split_into_epochs(workload, 3)
        for prev, nxt in zip(epochs, epochs[1:]):
            assert set(prev.known_request_ids) < set(nxt.known_request_ids)

    def test_object_belongs_to_its_earliest_request_epoch(self, workload):
        epochs = split_into_epochs(workload, 3)
        epoch_of = {}
        for e in epochs:
            for o in e.new_object_ids:
                epoch_of[o] = e.index
        for request in workload.requests:
            e = request.id % 3
            for o in request.object_ids:
                assert epoch_of[o] <= e

    def test_single_epoch_is_everything(self, workload):
        (epoch,) = split_into_epochs(workload, 1)
        assert len(epoch.new_object_ids) == workload.num_objects

    def test_invalid_epoch_count(self, workload):
        with pytest.raises(ValueError):
            split_into_epochs(workload, 0)


class TestSubsetWorkload:
    def test_round_trip_ids(self, workload):
        epochs = split_into_epochs(workload, 2)
        sub, to_global = subset_workload(
            workload, epochs[0].new_object_ids, epochs[0].known_request_ids
        )
        assert len(sub.catalog) == len(epochs[0].new_object_ids)
        # sizes preserved under the mapping
        for local in range(0, len(sub.catalog), 97):
            assert sub.catalog.size_of(local) == workload.catalog.size_of(
                int(to_global[local])
            )

    def test_requests_restricted_to_subset(self, workload):
        epochs = split_into_epochs(workload, 2)
        sub, to_global = subset_workload(
            workload, epochs[0].new_object_ids, epochs[0].known_request_ids
        )
        valid = set(range(len(sub.catalog)))
        for request in sub.requests:
            assert set(request.object_ids) <= valid

    def test_empty_subset_rejected(self, workload):
        with pytest.raises(ValueError):
            subset_workload(workload, [0], [])


class TestIncrementalPlacement:
    @pytest.fixture(scope="class")
    def epochs(self, workload):
        return split_into_epochs(workload, 3)

    @pytest.mark.parametrize("affinity", [True, False], ids=["affinity", "naive"])
    def test_valid_complete_placement(self, workload, spec, epochs, affinity):
        result = IncrementalParallelBatch(m=4, affinity=affinity).place_incrementally(
            workload, epochs, spec
        )
        result.validate(workload.catalog, spec)
        assert result.objects_placed() == workload.num_objects

    def test_epoch0_objects_undisturbed_by_later_epochs(self, workload, spec, epochs):
        """Append-only: epoch-0 objects sit before later arrivals on tape."""
        result = IncrementalParallelBatch(m=4).place_incrementally(workload, epochs, spec)
        epoch_of = {}
        for e in epochs:
            for o in e.new_object_ids:
                epoch_of[o] = e.index
        for extents in result.layouts.values():
            positions = sorted(extents, key=lambda e: e.start_mb)
            seen_epochs = [epoch_of[e.object_id] for e in positions]
            assert seen_epochs == sorted(seen_epochs), "later epoch written before earlier"

    def test_quality_ordering(self, workload, spec, epochs):
        """Omniscient >= affinity-append >= naive-append (with slack)."""
        full = SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=4)
        ).evaluate(num_samples=30, seed=9)
        aff = SimulationSession(
            workload, spec,
            placement=IncrementalParallelBatch(m=4, affinity=True).place_incrementally(
                workload, epochs, spec
            ),
        ).evaluate(num_samples=30, seed=9)
        naive = SimulationSession(
            workload, spec,
            placement=IncrementalParallelBatch(m=4, affinity=False).place_incrementally(
                workload, epochs, spec
            ),
        ).evaluate(num_samples=30, seed=9)
        assert full.avg_bandwidth_mb_s > 0.95 * aff.avg_bandwidth_mb_s
        assert aff.avg_bandwidth_mb_s > 0.9 * naive.avg_bandwidth_mb_s

    def test_scheme_name_reflects_mode(self, workload, spec, epochs):
        result = IncrementalParallelBatch(m=4, affinity=False).place_incrementally(
            workload, epochs, spec
        )
        assert "naive" in result.scheme

    def test_requires_epochs(self, workload, spec):
        with pytest.raises(ValueError):
            IncrementalParallelBatch().place_incrementally(workload, [], spec)
