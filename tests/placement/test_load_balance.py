"""Tests for the Figure-3 greedy zig-zag load balancer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ObjectCatalog
from repro.hardware import TapeId
from repro.placement import (
    PlacementError,
    TapeBin,
    choose_ndrv,
    round_robin_assign,
    zigzag_assign,
)


def bins(n, capacity=1e9):
    return [TapeBin(TapeId(0, i), capacity) for i in range(n)]


class TestTapeBin:
    def test_add_updates_usage_and_workload(self):
        b = TapeBin(TapeId(0, 0), 100.0)
        b.add(1, size_mb=40.0, load=8.0)
        assert b.used_mb == 40.0
        assert b.free_mb == 60.0
        assert b.workload == 8.0
        assert b.object_ids == [1]

    def test_add_overflow_rejected(self):
        b = TapeBin(TapeId(0, 0), 100.0)
        with pytest.raises(PlacementError):
            b.add(1, size_mb=150.0, load=1.0)

    def test_fits_with_tolerance(self):
        b = TapeBin(TapeId(0, 0), 100.0)
        assert b.fits(100.0)
        assert not b.fits(100.1)


class TestChooseNdrv:
    def test_small_cluster_stays_on_one_tape(self):
        assert choose_ndrv(100.0, num_objects=5, available_tapes=10, split_unit_mb=8000.0) == 1

    def test_big_cluster_spreads(self):
        assert choose_ndrv(40_000.0, 100, 10, 8000.0) == 5

    def test_capped_by_tapes(self):
        assert choose_ndrv(1e9, 100, 4, 8000.0) == 4

    def test_capped_by_object_count(self):
        assert choose_ndrv(1e9, 3, 10, 8000.0) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            choose_ndrv(10.0, 1, 0, 100.0)
        with pytest.raises(ValueError):
            choose_ndrv(10.0, 1, 1, 0.0)


class TestZigzag:
    def test_all_objects_assigned_exactly_once(self):
        catalog = ObjectCatalog(np.full(10, 10.0), np.linspace(0.1, 1.0, 10))
        tape_bins = bins(3)
        zigzag_assign(list(range(10)), catalog, tape_bins, ndrv=3)
        placed = [o for b in tape_bins for o in b.object_ids]
        assert sorted(placed) == list(range(10))

    def test_ndrv_limits_fanout(self):
        catalog = ObjectCatalog(np.full(10, 10.0), np.full(10, 0.1))
        tape_bins = bins(5)
        zigzag_assign(list(range(10)), catalog, tape_bins, ndrv=2)
        used = [b for b in tape_bins if b.object_ids]
        assert len(used) <= 2

    def test_balances_load_across_tapes(self):
        rng = np.random.default_rng(0)
        sizes = rng.uniform(10, 100, 60)
        probs = rng.uniform(0.01, 1.0, 60)
        catalog = ObjectCatalog(sizes, probs)
        tape_bins = bins(4)
        zigzag_assign(list(range(60)), catalog, tape_bins, ndrv=4)
        workloads = [b.workload for b in tape_bins]
        assert max(workloads) <= 2.0 * np.mean(workloads)

    def test_prefers_least_loaded_window(self):
        catalog = ObjectCatalog([10.0], [0.5])
        tape_bins = bins(3)
        tape_bins[0].workload = 100.0  # heavily pre-loaded
        zigzag_assign([0], catalog, tape_bins, ndrv=1)
        assert tape_bins[0].object_ids == []
        assert len(tape_bins[1].object_ids) + len(tape_bins[2].object_ids) == 1

    def test_capacity_fallback_within_window(self):
        catalog = ObjectCatalog([50.0, 50.0, 80.0], [0.1, 0.2, 0.3])
        tape_bins = [TapeBin(TapeId(0, 0), 100.0), TapeBin(TapeId(0, 1), 100.0)]
        assert zigzag_assign([0, 1, 2], catalog, tape_bins, ndrv=2) == []
        placed = sorted(o for b in tape_bins for o in b.object_ids)
        assert placed == [0, 1, 2]
        assert all(b.used_mb <= 100.0 for b in tape_bins)

    def test_unplaceable_returned_as_rejects(self):
        catalog = ObjectCatalog([200.0], [0.1])
        tape_bins = [TapeBin(TapeId(0, 0), 100.0)]
        rejects = zigzag_assign([0], catalog, tape_bins)
        assert rejects == [0]
        assert tape_bins[0].object_ids == []

    def test_empty_cluster_is_noop(self):
        catalog = ObjectCatalog([10.0], [0.1])
        tape_bins = bins(2)
        zigzag_assign([], catalog, tape_bins)
        assert all(not b.object_ids for b in tape_bins)

    def test_no_bins_raises(self):
        catalog = ObjectCatalog([10.0], [0.1])
        with pytest.raises(PlacementError):
            zigzag_assign([0], catalog, [])

    @given(
        n_objects=st.integers(min_value=1, max_value=40),
        n_tapes=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_complete_and_capacity_safe(self, n_objects, n_tapes, seed):
        rng = np.random.default_rng(seed)
        sizes = rng.uniform(1, 50, n_objects)
        probs = rng.uniform(0, 1, n_objects)
        catalog = ObjectCatalog(sizes, probs)
        capacity = sizes.sum()  # always enough room in aggregate per tape
        tape_bins = [TapeBin(TapeId(0, i), capacity) for i in range(n_tapes)]
        zigzag_assign(list(range(n_objects)), catalog, tape_bins)
        placed = sorted(o for b in tape_bins for o in b.object_ids)
        assert placed == list(range(n_objects))
        for b in tape_bins:
            assert b.used_mb <= b.capacity_mb + 1e-6
            assert b.used_mb == pytest.approx(sum(catalog.size_of(o) for o in b.object_ids))


class TestRoundRobin:
    def test_cycles_through_bins(self):
        catalog = ObjectCatalog(np.full(6, 10.0), np.full(6, 0.1))
        tape_bins = bins(3)
        round_robin_assign(list(range(6)), catalog, tape_bins)
        assert all(len(b.object_ids) == 2 for b in tape_bins)

    def test_skips_full_bins(self):
        catalog = ObjectCatalog([60.0, 60.0, 60.0], [0.1, 0.1, 0.1])
        tape_bins = [TapeBin(TapeId(0, 0), 70.0), TapeBin(TapeId(0, 1), 200.0)]
        round_robin_assign([0, 1, 2], catalog, tape_bins)
        assert len(tape_bins[0].object_ids) == 1
        assert len(tape_bins[1].object_ids) == 2

    def test_unplaceable_returned_as_rejects(self):
        catalog = ObjectCatalog([100.0], [0.1])
        rejects = round_robin_assign([0], catalog, [TapeBin(TapeId(0, 0), 50.0)])
        assert rejects == [0]
