"""Tests for co-access similarity and hierarchical clustering (Sec. 5.1)."""

import numpy as np
import pytest

from repro.catalog import ObjectCatalog, Request, RequestSet
from repro.placement import cluster_objects, similarity_edges
from repro.workload import Workload, generate_workload


def make_workload(request_specs, num_objects, sizes=None):
    """request_specs: list of (object_ids, probability)."""
    requests = RequestSet(
        [Request(i, tuple(ids), p) for i, (ids, p) in enumerate(request_specs)]
    )
    catalog = ObjectCatalog(sizes if sizes is not None else np.ones(num_objects))
    return Workload(catalog, requests)


class TestSimilarityEdges:
    def test_pairwise_sum_over_requests(self):
        w = make_workload([((0, 1, 2), 0.6), ((1, 2), 0.4)], 4)
        pairs, weights = similarity_edges(w.requests, 4)
        sim = {tuple(p): wt for p, wt in zip(pairs.tolist(), weights)}
        assert sim[(0, 1)] == pytest.approx(0.6)
        assert sim[(0, 2)] == pytest.approx(0.6)
        assert sim[(1, 2)] == pytest.approx(1.0)  # in both requests
        assert len(sim) == 3

    def test_singleton_requests_add_no_edges(self):
        w = make_workload([((0,), 0.5), ((1,), 0.5)], 2)
        pairs, weights = similarity_edges(w.requests, 2)
        assert len(pairs) == 0

    def test_pairs_are_ordered(self):
        w = make_workload([((3, 1), 1.0)], 4)
        pairs, _ = similarity_edges(w.requests, 4)
        assert pairs.tolist() == [[1, 3]]


class TestClusterObjects:
    @pytest.mark.parametrize("method", ["pairs", "requests"])
    def test_co_requested_objects_cluster_together(self, method):
        w = make_workload([((0, 1), 0.5), ((2, 3), 0.5)], 5)
        clustering = cluster_objects(w, method=method)
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(2) == clustering.cluster_of(3)
        assert clustering.cluster_of(0) != clustering.cluster_of(2)
        # object 4 appears in no request: singleton
        assert len(clustering.clusters[clustering.cluster_of(4)]) == 1

    @pytest.mark.parametrize("method", ["pairs", "requests"])
    def test_bridging_object_merges_requests(self, method):
        w = make_workload([((0, 1), 0.5), ((1, 2), 0.5)], 3)
        clustering = cluster_objects(w, method=method)
        assert clustering.cluster_of(0) == clustering.cluster_of(2)

    def test_methods_agree_without_caps(self):
        w = generate_workload(
            num_objects=300, num_requests=30, request_size_bounds=(3, 8), seed=13
        )
        a = cluster_objects(w, method="pairs")
        b = cluster_objects(w, method="requests")
        # Same partition: co-membership must match pairwise.
        la, lb = a.labels, b.labels
        for i in range(0, 300, 7):
            for j in range(i + 1, 300, 11):
                assert (la[i] == la[j]) == (lb[i] == lb[j])

    def test_threshold_cuts_weak_edges_pairs_method(self):
        w = make_workload([((0, 1), 0.9), ((2, 3), 0.1)], 4)
        clustering = cluster_objects(w, threshold=0.5, method="pairs")
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(2) != clustering.cluster_of(3)

    def test_threshold_cuts_weak_requests_method(self):
        w = make_workload([((0, 1), 0.9), ((2, 3), 0.1)], 4)
        clustering = cluster_objects(w, threshold=0.5, method="requests")
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(2) != clustering.cluster_of(3)

    @pytest.mark.parametrize("method", ["pairs", "requests"])
    def test_max_objects_cap(self, method):
        w = make_workload([(tuple(range(10)), 1.0)], 10)
        clustering = cluster_objects(w, max_objects=4, method=method)
        assert max(len(c) for c in clustering.clusters) <= 4
        assert sum(len(c) for c in clustering.clusters) == 10

    @pytest.mark.parametrize("method", ["pairs", "requests"])
    def test_max_size_cap(self, method):
        w = make_workload([((0, 1, 2), 1.0)], 3, sizes=[100.0, 100.0, 100.0])
        clustering = cluster_objects(w, max_size_mb=250.0, method=method)
        assert max(c.size_mb for c in clustering.clusters) <= 250.0

    def test_stronger_edges_merge_first_under_caps(self):
        # (0,1) strong, (1,2) weak; cap of 2 members keeps the strong pair.
        w = make_workload([((0, 1), 0.8), ((1, 2), 0.2)], 3)
        clustering = cluster_objects(w, max_objects=2, method="pairs")
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(2) != clustering.cluster_of(1)

    def test_cluster_stats(self):
        # Two requests so the normalized probability of request 0 stays 0.5.
        w = make_workload([((0, 1), 0.5), ((2,), 0.5)], 3, sizes=[10.0, 20.0, 30.0])
        clustering = cluster_objects(w)
        cluster = clustering.clusters[clustering.cluster_of(0)]
        assert cluster.size_mb == 30.0
        assert cluster.probability == pytest.approx(1.0)  # P(O0)+P(O1) = 0.5+0.5
        assert cluster.density == pytest.approx(1.0 / 30.0)

    def test_labels_cover_all_objects(self):
        w = generate_workload(
            num_objects=500, num_requests=20, request_size_bounds=(5, 15), seed=3
        )
        clustering = cluster_objects(w)
        assert clustering.num_objects == 500
        assert sum(len(c) for c in clustering.clusters) == 500

    def test_unknown_method_rejected(self):
        w = make_workload([((0, 1), 1.0)], 2)
        with pytest.raises(ValueError):
            cluster_objects(w, method="magic")

    def test_multi_object_clusters_helper(self):
        w = make_workload([((0, 1), 1.0)], 4)
        clustering = cluster_objects(w)
        multi = clustering.multi_object_clusters()
        assert len(multi) == 1
        assert set(multi[0].objects) == {0, 1}


class TestDetachShared:
    def test_shared_objects_stay_singletons(self):
        # Object 1 appears in both requests: it must not chain them.
        w = make_workload([((0, 1), 0.5), ((1, 2), 0.5)], 3)
        clustering = cluster_objects(w, detach_shared=True)
        assert len(clustering.clusters[clustering.cluster_of(1)]) == 1
        assert clustering.cluster_of(0) != clustering.cluster_of(2)

    def test_unshared_objects_still_cluster(self):
        w = make_workload([((0, 1, 2), 0.5), ((2, 3, 4), 0.5)], 5)
        clustering = cluster_objects(w, detach_shared=True)
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(3) == clustering.cluster_of(4)
        assert len(clustering.clusters[clustering.cluster_of(2)]) == 1

    def test_no_sharing_means_no_effect(self):
        w = make_workload([((0, 1), 0.5), ((2, 3), 0.5)], 4)
        a = cluster_objects(w, detach_shared=True)
        b = cluster_objects(w, detach_shared=False)
        for i in range(4):
            for j in range(4):
                assert (a.labels[i] == a.labels[j]) == (b.labels[i] == b.labels[j])

    def test_pairs_method_ignores_flag(self):
        w = make_workload([((0, 1), 0.5), ((1, 2), 0.5)], 3)
        clustering = cluster_objects(w, detach_shared=True, method="pairs")
        # single-linkage still chains through the bridge
        assert clustering.cluster_of(0) == clustering.cluster_of(2)
