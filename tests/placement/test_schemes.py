"""Integration-style tests of the three placement schemes end to end."""

import numpy as np
import pytest

from repro.hardware import LibrarySpec, SystemSpec, TapeSpec, TapeSystem
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    PlacementError,
    available_schemes,
    make_scheme,
)
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def spec():
    # Scaled-down system: 2 libraries x 4 drives x 10 tapes of 10 GB.
    return SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=10,
            tape=TapeSpec(capacity_mb=10_000, max_rewind_s=10),
        ),
    )


@pytest.fixture(scope="module")
def workload(spec):
    # ~600 objects x ~150 MB mean = ~90 GB in a 200 GB system: forces several
    # tape batches while leaving capacity slack.
    return generate_workload(
        num_objects=600,
        num_requests=40,
        request_size_bounds=(8, 20),
        object_size_bounds_mb=(5.0, 500.0),
        mean_object_size_mb=150.0,
        zipf_alpha=0.3,
        seed=42,
    )


ALL_SCHEMES = [
    ParallelBatchPlacement(m=2),
    ObjectProbabilityPlacement(),
    ClusterProbabilityPlacement(),
]


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
class TestAllSchemes:
    def test_validates(self, scheme, workload, spec):
        result = scheme.place(workload, spec)
        result.validate(workload.catalog, spec)  # raises on any violation

    def test_every_object_placed_once(self, scheme, workload, spec):
        result = scheme.place(workload, spec)
        assert result.objects_placed() == workload.num_objects

    def test_applies_to_system(self, scheme, workload, spec):
        result = scheme.place(workload, spec)
        system = TapeSystem(spec)
        index = result.apply_to(system)
        assert len(index) == workload.num_objects
        mounted = system.mounted_tape_ids()
        assert set(mounted) == set(result.initial_mounts.values())

    def test_initial_mounts_one_per_drive(self, scheme, workload, spec):
        result = scheme.place(workload, spec)
        assert len(set(result.initial_mounts.values())) == len(result.initial_mounts)
        for drive_id, tape_id in result.initial_mounts.items():
            assert drive_id.library == tape_id.library

    def test_tape_priorities_cover_used_tapes(self, scheme, workload, spec):
        result = scheme.place(workload, spec)
        for tid, extents in result.layouts.items():
            if extents:
                assert tid in result.tape_priority

    def test_deterministic(self, scheme, workload, spec):
        a = scheme.place(workload, spec)
        b = scheme.place(workload, spec)
        assert a.initial_mounts == b.initial_mounts
        for tid in a.layouts:
            assert [e.object_id for e in a.layouts[tid]] == [
                e.object_id for e in b.layouts[tid]
            ]


class TestParallelBatch:
    def test_pinned_drives_hold_batch0(self, workload, spec):
        result = ParallelBatchPlacement(m=2).place(workload, spec)
        d, m = spec.library.num_drives, 2
        for tape_id in result.pinned:
            assert tape_id.slot < d - m  # batch-0 slots

    def test_pinned_tapes_accumulate_most_probability(self, workload, spec):
        result = ParallelBatchPlacement(m=2).place(workload, spec)
        pinned_priority = np.mean([result.tape_priority[t] for t in result.pinned])
        others = [
            p
            for t, p in result.tape_priority.items()
            if t not in result.pinned and result.layouts[t]
        ]
        assert pinned_priority > np.mean(others)

    def test_batch_probability_skew_is_monotone(self, workload, spec):
        """Tape probability from batch b should dominate batch b+1 (Step 4
        refining goal), at least on average."""
        result = ParallelBatchPlacement(m=2).place(workload, spec)
        batches = result.metadata["batches"]
        means = []
        for batch in batches:
            probs = [result.tape_priority.get(t, 0.0) for t in batch]
            means.append(np.mean(probs))
        assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))

    def test_m_bounds_enforced(self, workload, spec):
        with pytest.raises(PlacementError):
            ParallelBatchPlacement(m=0).place(workload, spec)
        with pytest.raises(PlacementError):
            ParallelBatchPlacement(m=spec.library.num_drives).place(workload, spec)

    def test_switch_drives_get_batch1_at_startup(self, workload, spec):
        result = ParallelBatchPlacement(m=2).place(workload, spec)
        d, m = spec.library.num_drives, 2
        switch_mounts = {
            did: tid for did, tid in result.initial_mounts.items() if did.index >= d - m
        }
        if len(result.metadata["batches"]) > 1:
            batch1 = set(result.metadata["batches"][1])
            assert switch_mounts
            assert set(switch_mounts.values()) <= batch1

    def test_no_pinning_ablation(self, workload, spec):
        result = ParallelBatchPlacement(m=2, pin_first_batch=False).place(workload, spec)
        assert result.pinned == frozenset()

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ParallelBatchPlacement(k=0.0)
        with pytest.raises(ValueError):
            ParallelBatchPlacement(k=1.5)

    def test_requests_stay_within_few_batches(self, workload, spec):
        """Design goal: a request's objects concentrate in few batches."""
        result = ParallelBatchPlacement(m=2).place(workload, spec)
        tape_batch = {}
        for b, batch in enumerate(result.metadata["batches"]):
            for tid in batch:
                tape_batch[tid] = b
        system = TapeSystem(spec)
        index = result.apply_to(system)
        probs = workload.requests.probabilities
        # The most popular request should touch at most 2 batches.
        hot = workload.requests[int(np.argmax(probs))]
        batches_touched = {
            tape_batch[tid] for o in hot.object_ids for tid in index.tapes_of(o)
        }
        assert len(batches_touched) <= 2


class TestObjectProbability:
    def test_hot_objects_in_first_group(self, workload, spec):
        result = ObjectProbabilityPlacement().place(workload, spec)
        system = TapeSystem(spec)
        index = result.apply_to(system)
        probs = np.asarray(workload.catalog.probabilities)
        hottest = int(np.argmax(probs))
        (tid,) = index.tapes_of(hottest)
        assert tid.slot < spec.library.num_drives  # group 0 slots

    def test_group0_tapes_have_similar_priority(self, workload, spec):
        """Round-robin by rank should spread probability evenly in a group."""
        result = ObjectProbabilityPlacement().place(workload, spec)
        group0 = [
            p
            for t, p in result.tape_priority.items()
            if t.slot < spec.library.num_drives
        ]
        assert max(group0) <= 3.0 * min(group0)

    def test_initial_mounts_fill_all_drives(self, workload, spec):
        result = ObjectProbabilityPlacement().place(workload, spec)
        assert len(result.initial_mounts) == spec.total_drives

    def test_no_pinning(self, workload, spec):
        assert ObjectProbabilityPlacement().place(workload, spec).pinned == frozenset()


class TestClusterProbability:
    def test_cluster_members_share_a_tape(self, workload, spec):
        result = ClusterProbabilityPlacement().place(workload, spec)
        system = TapeSystem(spec)
        index = result.apply_to(system)
        from repro.placement import cluster_objects

        clustering = cluster_objects(
            workload, max_size_mb=0.9 * spec.library.tape.capacity_mb
        )
        for cluster in clustering.multi_object_clusters():
            tapes = {tid for o in cluster.objects for tid in index.tapes_of(o)}
            assert len(tapes) == 1

    def test_cluster_members_contiguous_on_tape(self, workload, spec):
        result = ClusterProbabilityPlacement().place(workload, spec)
        from repro.placement import cluster_objects

        clustering = cluster_objects(
            workload, max_size_mb=0.9 * spec.library.tape.capacity_mb
        )
        # Build object -> (tape, start) map.
        start = {}
        for tid, extents in result.layouts.items():
            for e in extents:
                start[e.object_id] = (tid, e.start_mb)
        sizes = workload.catalog.sizes_mb
        for cluster in clustering.multi_object_clusters():
            positions = sorted(start[o][1] for o in cluster.objects)
            total = sum(sizes[o] for o in cluster.objects)
            span = positions[-1] - positions[0]
            assert span < total  # members form one contiguous segment

    def test_tapes_alternate_libraries(self, workload, spec):
        result = ClusterProbabilityPlacement().place(workload, spec)
        used = sorted(
            (t for t, extents in result.layouts.items() if extents),
            key=lambda t: (t.slot, t.library),
        )
        libraries_used = {t.library for t in used}
        assert libraries_used == {0, 1}


class TestRegistry:
    def test_all_three_registered(self):
        assert set(available_schemes()) >= {
            "parallel_batch",
            "object_probability",
            "cluster_probability",
        }

    def test_make_scheme_with_kwargs(self):
        scheme = make_scheme("parallel_batch", m=3)
        assert scheme.m == 3

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            make_scheme("nope")
