"""Tests for density sort, sublist partition, and refinement (Steps 2-4)."""

import numpy as np
import pytest

from repro.catalog import ObjectCatalog, Request, RequestSet
from repro.placement import (
    PlacementError,
    cluster_objects,
    density_order,
    partition_sublists,
    refine_sublists,
)
from repro.workload import Workload


class TestDensityOrder:
    def test_sorted_by_density_descending(self):
        # densities: 0.1/10=0.01, 0.5/10=0.05, 0.2/10=0.02
        catalog = ObjectCatalog([10.0, 10.0, 10.0], [0.1, 0.5, 0.2])
        assert density_order(catalog).tolist() == [1, 2, 0]

    def test_density_not_probability(self):
        # object 0: high prob but huge -> low density
        catalog = ObjectCatalog([1000.0, 10.0], [0.5, 0.1])
        assert density_order(catalog).tolist() == [1, 0]

    def test_ties_break_by_id(self):
        catalog = ObjectCatalog([10.0, 10.0, 10.0], [0.0, 0.0, 0.0])
        assert density_order(catalog).tolist() == [0, 1, 2]


class TestPartition:
    def test_first_sublist_has_distinct_capacity(self):
        catalog = ObjectCatalog(np.full(10, 10.0))
        sublists = partition_sublists(range(10), catalog, 40.0, 20.0)
        assert [len(s) for s in sublists] == [4, 2, 2, 2]

    def test_preserves_order(self):
        catalog = ObjectCatalog(np.full(6, 10.0))
        sublists = partition_sublists([5, 4, 3, 2, 1, 0], catalog, 30.0, 30.0)
        assert sublists == [[5, 4, 3], [2, 1, 0]]

    def test_spill_does_not_backfill(self):
        """An object that overflows the tail never reuses earlier slack
        (would break the probability skew)."""
        catalog = ObjectCatalog([30.0, 25.0, 5.0])
        sublists = partition_sublists([0, 1, 2], catalog, 50.0, 50.0)
        assert sublists == [[0], [1, 2]]

    def test_object_larger_than_batch_rejected(self):
        catalog = ObjectCatalog([100.0, 100.0])
        with pytest.raises(PlacementError):
            partition_sublists([0, 1], catalog, 120.0, 50.0)

    def test_invalid_capacity_rejected(self):
        catalog = ObjectCatalog([1.0])
        with pytest.raises(ValueError):
            partition_sublists([0], catalog, 0.0, 10.0)


class TestRefine:
    def _workload(self, sizes, request_specs):
        requests = RequestSet(
            [Request(i, tuple(ids), p) for i, (ids, p) in enumerate(request_specs)]
        )
        return Workload(ObjectCatalog(np.asarray(sizes, dtype=float)), requests)

    def test_split_cluster_pulled_together(self):
        # Objects 2 and 3 are co-requested but straddle the sublist boundary.
        w = self._workload(
            [10.0, 10.0, 10.0, 10.0],
            [((2, 3), 1.0)],
        )
        clustering = cluster_objects(w)
        sublists = [[0, 1, 2], [3]]
        refined = refine_sublists(sublists, clustering, w.catalog, 40.0, 40.0)
        joined = [s for s in refined if 2 in s and 3 in s]
        assert len(joined) == 1

    def test_no_cluster_ever_spans_two_sublists(self):
        w = self._workload(
            [20.0] * 8,
            [((0, 4), 0.4), ((1, 5), 0.3), ((2, 6), 0.2), ((3, 7), 0.1)],
        )
        clustering = cluster_objects(w)
        sublists = [[0, 1, 2, 3], [4, 5, 6, 7]]
        refined = refine_sublists(sublists, clustering, w.catalog, 80.0, 80.0)
        for cluster in clustering.multi_object_clusters():
            homes = [i for i, s in enumerate(refined) if set(cluster.objects) & set(s)]
            assert len(homes) == 1

    def test_every_object_exactly_once(self):
        w = self._workload(
            [10.0] * 6,
            [((0, 1, 2), 0.6), ((3, 4), 0.4)],
        )
        clustering = cluster_objects(w)
        sublists = [[0, 3, 1], [4, 2, 5]]
        refined = refine_sublists(sublists, clustering, w.catalog, 30.0, 30.0)
        flat = sorted(o for s in refined for o in s)
        assert flat == list(range(6))

    def test_capacities_respected(self):
        w = self._workload(
            [10.0] * 6,
            [((0, 1, 2), 0.6), ((3, 4), 0.4)],
        )
        clustering = cluster_objects(w)
        sublists = [[0, 3, 1], [4, 2, 5]]
        refined = refine_sublists(sublists, clustering, w.catalog, 30.0, 30.0)
        assert sum(w.catalog.size_of(o) for o in refined[0]) <= 30.0
        for s in refined[1:]:
            assert sum(w.catalog.size_of(o) for o in s) <= 30.0

    def test_densest_cluster_lands_in_first_sublist(self):
        # Hot small cluster vs cold big cluster: density decides batch 0.
        w = self._workload(
            [10.0, 10.0, 40.0, 40.0],
            [((0, 1), 0.9), ((2, 3), 0.1)],
        )
        clustering = cluster_objects(w)
        sublists = [[0, 1, 2], [3]]
        refined = refine_sublists(sublists, clustering, w.catalog, 80.0, 80.0)
        assert {0, 1} <= set(refined[0])

    def test_oversized_cluster_raises(self):
        w = self._workload([50.0, 50.0], [((0, 1), 1.0)])
        clustering = cluster_objects(w)  # one 100 MB cluster
        with pytest.raises(PlacementError):
            refine_sublists([[0], [1]], clustering, w.catalog, 60.0, 60.0)

    def test_cluster_members_keep_density_order(self):
        w = self._workload([10.0, 10.0, 10.0], [((0, 1, 2), 1.0)])
        clustering = cluster_objects(w)
        sublists = [[2, 0], [1]]  # arbitrary incoming order
        refined = refine_sublists(sublists, clustering, w.catalog, 100.0, 100.0)
        merged = [s for s in refined if s]
        assert merged[0] == [2, 0, 1]  # original scan order preserved

    def test_singleton_only_partition_is_stable(self):
        w = self._workload([10.0] * 3, [((0,), 1.0)])
        clustering = cluster_objects(w)
        sublists = [[0, 1], [2]]
        refined = refine_sublists(sublists, clustering, w.catalog, 20.0, 20.0)
        assert sorted(o for s in refined for o in s) == [0, 1, 2]
        assert refined[0] == [0, 1]
