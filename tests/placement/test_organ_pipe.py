"""Tests for organ-pipe alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ObjectCatalog
from repro.placement import organ_pipe_extents, organ_pipe_order, sequential_extents


class TestOrganPipeOrder:
    def test_empty(self):
        assert organ_pipe_order([]) == []

    def test_single(self):
        assert organ_pipe_order([0.5]) == [0]

    def test_hottest_in_middle(self):
        probs = [0.1, 0.9, 0.2, 0.4, 0.05]
        order = organ_pipe_order(probs)
        hottest_pos = order.index(1)
        assert hottest_pos in (len(probs) // 2, len(probs) // 2 - 1)

    def test_profile_rises_then_falls(self):
        probs = [0.1, 0.3, 0.05, 0.25, 0.2, 0.1]
        order = organ_pipe_order(probs)
        profile = [probs[i] for i in order]
        peak = int(np.argmax(profile))
        assert all(profile[i] <= profile[i + 1] for i in range(peak))
        assert all(profile[i] >= profile[i + 1] for i in range(peak, len(profile) - 1))

    def test_is_permutation(self):
        probs = [0.4, 0.1, 0.2, 0.3]
        assert sorted(organ_pipe_order(probs)) == [0, 1, 2, 3]

    def test_deterministic_on_ties(self):
        probs = [0.2, 0.2, 0.2]
        assert organ_pipe_order(probs) == organ_pipe_order(probs)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            organ_pipe_order(np.zeros((2, 2)))

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), max_size=40))
    @settings(max_examples=50)
    def test_always_a_permutation_with_unimodal_profile(self, probs):
        order = organ_pipe_order(probs)
        assert sorted(order) == list(range(len(probs)))
        profile = [probs[i] for i in order]
        if profile:
            peak = int(np.argmax(profile))
            assert all(profile[i] <= profile[i + 1] + 1e-12 for i in range(peak))
            assert all(profile[i] + 1e-12 >= profile[i + 1] for i in range(peak, len(profile) - 1))

    def test_expected_seek_not_worse_than_sequential(self):
        """Organ pipe minimizes expected pairwise seek distance under
        independent accesses — compare against rank order for a skewed set."""
        rng = np.random.default_rng(0)
        probs = np.sort(rng.pareto(1.5, 15) + 0.01)[::-1]
        probs /= probs.sum()
        sizes = np.ones(15)

        def expected_seek(order):
            centers = {}
            pos = 0.0
            for idx in order:
                centers[idx] = pos + sizes[idx] / 2
                pos += sizes[idx]
            return sum(
                probs[a] * probs[b] * abs(centers[a] - centers[b])
                for a in range(15)
                for b in range(15)
            )

        pipe = expected_seek(organ_pipe_order(probs))
        sequential = expected_seek(list(range(15)))
        assert pipe <= sequential + 1e-12


class TestExtents:
    @pytest.fixture
    def catalog(self):
        return ObjectCatalog([10.0, 20.0, 30.0], [0.5, 0.3, 0.2])

    def test_organ_pipe_extents_contiguous_from_zero(self, catalog):
        extents = organ_pipe_extents([0, 1, 2], catalog)
        assert extents[0].start_mb == 0.0
        for a, b in zip(extents, extents[1:]):
            assert b.start_mb == pytest.approx(a.end_mb)
        assert sum(e.size_mb for e in extents) == 60.0

    def test_organ_pipe_extents_hottest_centred(self, catalog):
        extents = organ_pipe_extents([0, 1, 2], catalog)
        ids = [e.object_id for e in extents]
        assert ids.index(0) == 1  # hottest (object 0) in the middle of 3

    def test_sequential_extents_keep_order(self, catalog):
        extents = sequential_extents([2, 0, 1], catalog)
        assert [e.object_id for e in extents] == [2, 0, 1]
        assert extents[0].start_mb == 0.0

    def test_empty_ids(self, catalog):
        assert organ_pipe_extents([], catalog) == []
        assert sequential_extents([], catalog) == []


class TestClusteredOrganPipe:
    @pytest.fixture
    def catalog6(self):
        from repro.catalog import ObjectCatalog
        return ObjectCatalog(
            [10.0] * 6, [0.1, 0.2, 0.3, 0.4, 0.05, 0.15]
        )

    def test_groups_stay_contiguous(self, catalog6):
        from repro.placement import clustered_organ_pipe_extents

        groups = [[0, 1], [2, 3], [4, 5]]
        extents = clustered_organ_pipe_extents(groups, catalog6)
        position = {e.object_id: e.start_mb for e in extents}
        for group in groups:
            starts = sorted(position[o] for o in group)
            # contiguous: members span exactly their total size
            assert starts[-1] - starts[0] == pytest.approx(10.0)

    def test_hottest_group_in_middle(self, catalog6):
        from repro.placement import clustered_organ_pipe_extents

        groups = [[0], [2, 3], [4]]  # probs 0.1, 0.7, 0.05
        extents = clustered_organ_pipe_extents(groups, catalog6)
        ordered_ids = [e.object_id for e in sorted(extents, key=lambda e: e.start_mb)]
        # hottest group {2,3} occupies the middle two slots of four
        assert set(ordered_ids[1:3]) == {2, 3}

    def test_all_objects_placed_once(self, catalog6):
        from repro.placement import clustered_organ_pipe_extents

        extents = clustered_organ_pipe_extents([[0, 1, 2], [3], [4, 5]], catalog6)
        assert sorted(e.object_id for e in extents) == list(range(6))
        assert extents[0].start_mb == 0.0

    def test_singleton_groups_equal_plain_organ_pipe(self, catalog6):
        from repro.placement import clustered_organ_pipe_extents, organ_pipe_extents

        grouped = clustered_organ_pipe_extents([[i] for i in range(6)], catalog6)
        plain = organ_pipe_extents(list(range(6)), catalog6)
        assert [e.object_id for e in grouped] == [e.object_id for e in plain]
