"""Property-based tests: every scheme, random workloads, hard invariants.

For any generated workload that fits the system, every placement scheme
must produce a placement that (a) passes full structural validation,
(b) covers every byte, and (c) is deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ObjectCatalog, Request, RequestSet
from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    StripedPlacement,
)
from repro.workload import Workload


def build_workload(draw_seed, num_objects, num_requests, alpha):
    rng = np.random.default_rng(draw_seed)
    sizes = rng.uniform(5.0, 400.0, num_objects)
    catalog = ObjectCatalog(sizes)
    weights = (np.arange(1, num_requests + 1)) ** -alpha
    requests = []
    for i in range(num_requests):
        k = int(rng.integers(2, min(12, num_objects) + 1))
        members = tuple(int(o) for o in rng.choice(num_objects, size=k, replace=False))
        requests.append(Request(i, members, float(weights[i])))
    return Workload(catalog, RequestSet(requests))


SPEC = SystemSpec(
    num_libraries=2,
    library=LibrarySpec(num_drives=4, num_tapes=10, tape=TapeSpec(capacity_mb=5_000, max_rewind_s=10)),
)

SCHEMES = [
    lambda: ParallelBatchPlacement(m=2),
    lambda: ParallelBatchPlacement(m=3, refine=False),
    lambda: ParallelBatchPlacement(m=1, alignment="object"),
    lambda: ObjectProbabilityPlacement(),
    lambda: ClusterProbabilityPlacement(),
    lambda: StripedPlacement(stripe_width=2, min_stripe_mb=100.0),
]


@pytest.mark.parametrize("make_scheme", SCHEMES, ids=lambda f: repr(f()))
@given(
    draw_seed=st.integers(min_value=0, max_value=10_000),
    num_objects=st.integers(min_value=30, max_value=250),
    num_requests=st.integers(min_value=2, max_value=20),
    alpha=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=12, deadline=None)
def test_any_workload_places_validly(make_scheme, draw_seed, num_objects, num_requests, alpha):
    workload = build_workload(draw_seed, num_objects, num_requests, alpha)
    scheme = make_scheme()
    result = scheme.place(workload, SPEC)
    result.validate(workload.catalog, SPEC)  # raises on any violation

    # Byte conservation: the layouts hold exactly the catalog's bytes.
    placed_mb = sum(e.size_mb for extents in result.layouts.values() for e in extents)
    assert placed_mb == pytest.approx(workload.total_size_mb)

    # Initial mounts reference non-empty tapes of the right library.
    for drive_id, tape_id in result.initial_mounts.items():
        assert result.layouts.get(tape_id), f"{tape_id} mounted but empty"
        assert drive_id.library == tape_id.library


@pytest.mark.parametrize("make_scheme", SCHEMES[:1] + SCHEMES[3:], ids=lambda f: repr(f()))
@given(draw_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=6, deadline=None)
def test_placement_is_deterministic(make_scheme, draw_seed):
    workload = build_workload(draw_seed, 80, 8, 0.5)
    a = make_scheme().place(workload, SPEC)
    b = make_scheme().place(workload, SPEC)
    assert a.initial_mounts == b.initial_mounts
    for tid in a.layouts:
        assert [(e.object_id, e.start_mb) for e in a.layouts[tid]] == [
            (e.object_id, e.start_mb) for e in b.layouts[tid]
        ]
