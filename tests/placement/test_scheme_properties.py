"""Property-based tests: every scheme, random workloads, hard invariants.

For any generated workload that fits the system, every placement scheme
must produce a placement that (a) passes full structural validation,
(b) covers every byte, and (c) is deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ObjectCatalog, Request, RequestSet
from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    StripedPlacement,
)
from repro.workload import Workload


def build_workload(draw_seed, num_objects, num_requests, alpha):
    rng = np.random.default_rng(draw_seed)
    sizes = rng.uniform(5.0, 400.0, num_objects)
    catalog = ObjectCatalog(sizes)
    weights = (np.arange(1, num_requests + 1)) ** -alpha
    requests = []
    for i in range(num_requests):
        k = int(rng.integers(2, min(12, num_objects) + 1))
        members = tuple(int(o) for o in rng.choice(num_objects, size=k, replace=False))
        requests.append(Request(i, members, float(weights[i])))
    return Workload(catalog, RequestSet(requests))


SPEC = SystemSpec(
    num_libraries=2,
    library=LibrarySpec(num_drives=4, num_tapes=10, tape=TapeSpec(capacity_mb=5_000, max_rewind_s=10)),
)

SCHEMES = [
    lambda: ParallelBatchPlacement(m=2),
    lambda: ParallelBatchPlacement(m=3, refine=False),
    lambda: ParallelBatchPlacement(m=1, alignment="object"),
    lambda: ObjectProbabilityPlacement(),
    lambda: ClusterProbabilityPlacement(),
    lambda: StripedPlacement(stripe_width=2, min_stripe_mb=100.0),
]


@pytest.mark.parametrize("make_scheme", SCHEMES, ids=lambda f: repr(f()))
@given(
    draw_seed=st.integers(min_value=0, max_value=10_000),
    num_objects=st.integers(min_value=30, max_value=250),
    num_requests=st.integers(min_value=2, max_value=20),
    alpha=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=12, deadline=None)
def test_any_workload_places_validly(make_scheme, draw_seed, num_objects, num_requests, alpha):
    workload = build_workload(draw_seed, num_objects, num_requests, alpha)
    scheme = make_scheme()
    result = scheme.place(workload, SPEC)
    result.validate(workload.catalog, SPEC)  # raises on any violation

    # Byte conservation: the layouts hold exactly the catalog's bytes.
    placed_mb = sum(e.size_mb for extents in result.layouts.values() for e in extents)
    assert placed_mb == pytest.approx(workload.total_size_mb)

    # Initial mounts reference non-empty tapes of the right library.
    for drive_id, tape_id in result.initial_mounts.items():
        assert result.layouts.get(tape_id), f"{tape_id} mounted but empty"
        assert drive_id.library == tape_id.library


@pytest.mark.parametrize("make_scheme", SCHEMES, ids=lambda f: repr(f()))
@given(
    draw_seed=st.integers(min_value=0, max_value=10_000),
    num_objects=st.integers(min_value=30, max_value=250),
    alpha=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=10, deadline=None)
def test_every_object_placed_exactly_once(make_scheme, draw_seed, num_objects, alpha):
    # Striping legitimately splits one object across several tapes, so the
    # invariant there is per-(object, extent-set) byte coverage, checked by
    # validate(); for whole-object schemes each id appears exactly once.
    workload = build_workload(draw_seed, num_objects, 8, alpha)
    scheme = make_scheme()
    result = scheme.place(workload, SPEC)
    placed = [e.object_id for extents in result.layouts.values() for e in extents]
    if scheme.name == "striped":
        assert set(placed) == set(range(num_objects))
        per_object = {}
        for extents in result.layouts.values():
            for e in extents:
                per_object[e.object_id] = per_object.get(e.object_id, 0.0) + e.size_mb
        sizes = workload.catalog.sizes_mb
        for oid, total in per_object.items():
            assert total == pytest.approx(sizes[oid])
    else:
        assert sorted(placed) == list(range(num_objects))


@pytest.mark.parametrize("make_scheme", SCHEMES, ids=lambda f: repr(f()))
@given(
    draw_seed=st.integers(min_value=0, max_value=10_000),
    num_objects=st.integers(min_value=30, max_value=250),
    alpha=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=10, deadline=None)
def test_tape_capacity_never_exceeded(make_scheme, draw_seed, num_objects, alpha):
    workload = build_workload(draw_seed, num_objects, 8, alpha)
    result = make_scheme().place(workload, SPEC)
    capacity = SPEC.library.tape.capacity_mb
    for tape_id, extents in result.layouts.items():
        used = sum(e.size_mb for e in extents)
        assert used <= capacity + 1e-6, f"{tape_id} holds {used} MB > {capacity} MB"
        # Extents are laid out back-to-back and stay within the tape.
        for e in extents:
            assert 0.0 <= e.start_mb <= e.start_mb + e.size_mb <= capacity + 1e-6


@given(
    draw_seed=st.integers(min_value=0, max_value=10_000),
    num_objects=st.integers(min_value=60, max_value=250),
    m=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_parallel_batch_structure(draw_seed, num_objects, m):
    # Paper Sec. 4: batch 0 spans the n x (d-m) pinned drives (one tape
    # each); every later batch spans exactly the n x m switch drives.
    workload = build_workload(draw_seed, num_objects, 8, 0.5)
    result = ParallelBatchPlacement(m=m).place(workload, SPEC)
    n = SPEC.num_libraries
    d = SPEC.library.num_drives
    batches = result.metadata["batches"]
    assert len(batches) >= 1
    assert len(batches[0]) == n * (d - m)
    for later in batches[1:]:
        assert len(later) == n * m
    # Batches partition distinct tapes (no tape serves two batches).
    flat = [tid for batch in batches for tid in batch]
    assert len(flat) == len(set(flat))


@pytest.mark.parametrize("make_scheme", SCHEMES[:1] + SCHEMES[3:], ids=lambda f: repr(f()))
@given(draw_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=6, deadline=None)
def test_placement_is_deterministic(make_scheme, draw_seed):
    workload = build_workload(draw_seed, 80, 8, 0.5)
    a = make_scheme().place(workload, SPEC)
    b = make_scheme().place(workload, SPEC)
    assert a.initial_mounts == b.initial_mounts
    for tid in a.layouts:
        assert [(e.object_id, e.start_mb) for e in a.layouts[tid]] == [
            (e.object_id, e.start_mb) for e in b.layouts[tid]
        ]
