"""Tests for Resource / PriorityResource queueing semantics."""

import pytest

from repro.des import Environment, PriorityResource, Resource


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, 0)

    def test_grant_when_free(self, env):
        res = Resource(env, 1)
        log = []

        def user():
            with res.request() as req:
                yield req
                log.append(env.now)
                yield env.timeout(1)

        env.process(user())
        env.run()
        assert log == [0]
        assert res.count == 0

    def test_fifo_queueing_serializes_users(self, env):
        res = Resource(env, 1)
        log = []

        def user(name, hold):
            with res.request() as req:
                yield req
                log.append((name, env.now))
                yield env.timeout(hold)

        env.process(user("a", 3))
        env.process(user("b", 2))
        env.process(user("c", 1))
        env.run()
        assert log == [("a", 0), ("b", 3), ("c", 5)]

    def test_capacity_two_allows_two_concurrent(self, env):
        res = Resource(env, 2)
        log = []

        def user(name):
            with res.request() as req:
                yield req
                log.append((name, env.now))
                yield env.timeout(4)

        for name in "abc":
            env.process(user(name))
        env.run()
        assert log == [("a", 0), ("b", 0), ("c", 4)]

    def test_count_and_queue_lengths(self, env):
        res = Resource(env, 1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def observer():
            yield env.timeout(1)
            assert res.count == 1
            assert len(res.queue) == 1

        env.process(holder())
        env.process(holder())
        env.process(observer())
        env.run()

    def test_explicit_release(self, env):
        res = Resource(env, 1)
        log = []

        def user(name):
            req = res.request()
            yield req
            log.append((name, env.now))
            yield env.timeout(2)
            res.release(req)

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [("a", 0), ("b", 2)]

    def test_cancelled_queued_request_is_skipped(self, env):
        res = Resource(env, 1)
        log = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def quitter():
            req = res.request()  # queued behind holder
            yield env.timeout(1)
            req.cancel()

        def patient():
            with res.request() as req:
                yield req
                log.append(env.now)

        env.process(holder())
        env.process(quitter())
        env.process(patient())
        env.run()
        assert log == [5]

    def test_requested_at_recorded(self, env):
        res = Resource(env, 1)
        waits = []

        def user(delay):
            yield env.timeout(delay)
            with res.request() as req:
                yield req
                waits.append(env.now - req.requested_at)
                yield env.timeout(10)

        env.process(user(0))
        env.process(user(1))
        env.run()
        assert waits == [0, 9]


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env, 1)
        log = []

        def user(name, priority):
            with res.request(priority=priority) as req:
                yield req
                log.append(name)
                yield env.timeout(1)

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)  # others queue while we hold

        env.process(holder())

        def spawn():
            yield env.timeout(0)
            env.process(user("low", 5))
            env.process(user("high", 1))
            env.process(user("mid", 3))

        env.process(spawn())
        env.run()
        assert log == ["high", "mid", "low"]

    def test_equal_priority_is_fifo(self, env):
        res = PriorityResource(env, 1)
        log = []

        def user(name):
            with res.request(priority=1) as req:
                yield req
                log.append(name)
                yield env.timeout(1)

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(1)

        env.process(holder())

        def spawn():
            yield env.timeout(0)
            for name in "abc":
                env.process(user(name))

        env.process(spawn())
        env.run()
        assert log == ["a", "b", "c"]

    def test_cancel_queued_priority_request(self, env):
        res = PriorityResource(env, 1)
        log = []

        def holder():
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(5)

        def quitter():
            req = res.request(priority=1)
            yield env.timeout(1)
            req.cancel()

        def patient():
            with res.request(priority=2) as req:
                yield req
                log.append(env.now)

        env.process(holder())
        env.process(quitter())
        env.process(patient())
        env.run()
        assert log == [5]
