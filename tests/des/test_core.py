"""Tests for the DES environment: clock, scheduling order, run() semantics."""

import pytest

from repro.des import Environment, EmptySchedule, SimulationError


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3)

    env.process(proc())
    env.run()
    assert env.now == 3


def test_run_until_time_sets_clock_even_without_events():
    env = Environment()
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_raises():
    env = Environment(5)
    with pytest.raises(ValueError):
        env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_events_fire_in_time_order():
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in [5, 1, 3, 2, 4]:
        env.process(waiter(delay))
    env.run()
    assert fired == [1, 2, 3, 4, 5]


def test_fifo_order_for_simultaneous_events():
    env = Environment()
    fired = []

    def waiter(tag):
        yield env.timeout(1)
        fired.append(tag)

    for tag in "abc":
        env.process(waiter(tag))
    env.run()
    assert fired == ["a", "b", "c"]


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_run_until_already_processed_event_returns_immediately():
    env = Environment()

    def proc():
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert env.run(until=p) is None  # generator had no return value


def test_run_until_event_never_triggered_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7


def test_peek_on_empty_returns_infinity():
    assert Environment().peek() == float("inf")


def test_len_counts_scheduled_events():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    assert len(env) == 2


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_zero_timeout_allowed_and_fires_now():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0.0]


def test_run_until_time_stops_before_later_events():
    env = Environment()
    seen = []

    def proc():
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert seen == [1, 2, 3]
    assert env.now == 3.5


def test_clock_docstring_example():
    env = Environment()
    log = []

    def clock(env, name, tick):
        while True:
            log.append((name, env.now))
            yield env.timeout(tick)

    env.process(clock(env, "fast", 1))
    env.process(clock(env, "slow", 2))
    env.run(until=4)
    assert log == [
        ("fast", 0),
        ("slow", 0),
        ("fast", 1),
        ("slow", 2),
        ("fast", 2),
        ("fast", 3),
    ]
