"""Tests for the Span/Trace telemetry helpers."""

import pytest

from repro.des import Environment, Resource, ResourceUsageMonitor, Span, Trace
from repro.obs import MetricsRegistry


class _Clock:
    """Minimal env stand-in for SpanContext unit tests."""

    def __init__(self, now=0.0):
        self.now = now


def test_span_duration():
    assert Span("x", 1.0, 3.5).duration == 2.5


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError):
        Span("x", 2.0, 1.0)


def test_record_and_len():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.record("b", 1, 2)
    assert len(trace) == 2


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    assert trace.record("a", 0, 1) is None
    assert len(trace) == 0


def test_spans_filter_by_name():
    trace = Trace()
    trace.record("seek", 0, 1)
    trace.record("transfer", 1, 3)
    trace.record("seek", 3, 4)
    assert len(trace.spans("seek")) == 2


def test_spans_filter_by_attrs():
    trace = Trace()
    trace.record("transfer", 0, 1, drive=1)
    trace.record("transfer", 0, 1, drive=2)
    assert len(trace.spans("transfer", drive=2)) == 1


def test_total_sums_durations():
    trace = Trace()
    trace.record("seek", 0, 2)
    trace.record("seek", 5, 6)
    assert trace.total("seek") == 3


def test_busy_time_merges_overlaps():
    trace = Trace()
    trace.record("x", 0, 4)
    trace.record("x", 2, 6)   # overlaps
    trace.record("x", 10, 11)  # disjoint
    assert trace.busy_time("x") == 7


def test_busy_time_empty_is_zero():
    assert Trace().busy_time() == 0.0


def test_clear():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.clear()
    assert len(trace) == 0


def test_iteration_yields_spans_in_order():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.record("b", 1, 2)
    assert [s.name for s in trace] == ["a", "b"]


# ---------------------------------------------------------------------------
# Causal span trees
# ---------------------------------------------------------------------------


def test_span_context_records_nested_tree():
    trace = Trace()
    clock = _Clock()
    with trace.span(clock, "request", request=5) as root:
        clock.now = 1.0
        with trace.span(clock, "seek", parent=root.id, request=5, drive="L0.D0"):
            clock.now = 3.0
        clock.now = 9.0
    seek, request = trace.spans("seek")[0], trace.spans("request")[0]
    assert seek.parent_id == request.span_id
    assert seek.request_id == request.request_id == 5
    assert (seek.start, seek.end) == (1.0, 3.0)
    assert (request.start, request.end) == (0.0, 9.0)


def test_span_context_closes_exactly_once():
    trace = Trace()
    ctx = trace.span(_Clock(), "seek")
    with ctx:
        pass
    with pytest.raises(RuntimeError):
        with ctx:
            pass
    assert len(trace.spans("seek")) == 1


def test_span_context_tags_aborted_on_exception():
    trace = Trace()
    clock = _Clock()
    with pytest.raises(KeyError):
        with trace.span(clock, "transfer", drive="L0.D0"):
            clock.now = 4.0
            raise KeyError("interrupted")
    (span,) = trace.spans("transfer")
    assert span.aborted
    assert span.end == 4.0
    assert span.attrs["drive"] == "L0.D0"  # original attrs kept


def test_reserved_id_parents_children_recorded_first():
    trace = Trace()
    root_id = trace.reserve_id()
    trace.record("seek", 0.0, 2.0, parent=root_id, request=1)
    trace.record_reserved(root_id, "request", 0.0, 5.0, request=1)
    (seek,) = trace.spans("seek")
    (root,) = trace.spans("request")
    assert root.span_id == root_id
    assert seek.parent_id == root_id
    assert trace.by_id()[root_id] is root


def test_tree_queries():
    trace = Trace()
    a = trace.record("request", 0, 10, request=1)
    b = trace.record("tape_job", 0, 10, parent=a.span_id, request=1)
    c = trace.record("seek", 0, 2, parent=b.span_id, request=1)
    d = trace.record("request", 0, 4, request=2)
    assert trace.roots() == [a, d]
    assert trace.roots(request_id=2) == [d]
    assert trace.children(a.span_id) == [b]
    assert trace.request_spans(1) == [a, b, c]
    assert trace.leaves(request_id=1) == [c]
    assert trace.request_ids() == [1, 2]


def test_disabled_trace_reserved_ids_are_none():
    trace = Trace(enabled=False)
    assert trace.reserve_id() is None
    assert trace.record_reserved(None, "request", 0, 1) is None
    assert len(trace) == 0


# ---------------------------------------------------------------------------
# ResourceUsageMonitor occupancy and queue accounting
# ---------------------------------------------------------------------------


def _hold(env, resource, hold_s):
    with resource.request() as req:
        yield req
        yield env.timeout(hold_s)


def test_monitor_counts_grants_and_occupancy():
    env = Environment()
    resource = Resource(env, capacity=2)
    monitor = ResourceUsageMonitor("pool").attach(resource)
    for _ in range(3):
        env.process(_hold(env, resource, 4.0))
    env.run()
    assert monitor.grants == 3
    assert monitor.max_in_use == 2  # capacity bound respected
    # Two overlap on [0, 4], the third runs [4, 8]: busy union is 8s,
    # slot-seconds are 3 holds x 4s.
    assert monitor.busy_s == pytest.approx(8.0)
    assert monitor.slot_busy_s == pytest.approx(12.0)
    assert monitor.max_queue_depth == 1
    assert monitor.queue_wait_s == pytest.approx(4.0)
    assert monitor.queue_depth == 0 and monitor.in_use == 0


def test_monitor_rejects_attaching_to_busy_resource():
    env = Environment()
    resource = Resource(env, capacity=1)
    env.process(_hold(env, resource, 1.0))
    env.run()  # drains, but exercise the guard with a live user
    resource.request()  # immediate grant, never released
    with pytest.raises(ValueError):
        ResourceUsageMonitor("late").attach(resource)


def test_monitor_publishes_registry_instruments():
    env = Environment()
    registry = MetricsRegistry()
    resource = Resource(env, capacity=1)
    ResourceUsageMonitor("robot", registry=registry).attach(resource)
    env.process(_hold(env, resource, 2.0))
    env.process(_hold(env, resource, 2.0))
    env.run()
    assert registry.counters["resource.robot.grants"].value == 2
    in_use = registry.gauges["resource.robot.in_use"]
    queue = registry.gauges["resource.robot.queue_depth"]
    assert in_use.value == 0 and in_use.max == 1
    assert queue.value == 0 and queue.max == 1
    # Gauge integral matches the monitor's own slot accounting.
    assert in_use.time_weighted_mean(now=env.now) == pytest.approx(4.0 / env.now)
