"""Tests for the Span/Trace telemetry helpers."""

import pytest

from repro.des import Span, Trace


def test_span_duration():
    assert Span("x", 1.0, 3.5).duration == 2.5


def test_span_rejects_negative_duration():
    with pytest.raises(ValueError):
        Span("x", 2.0, 1.0)


def test_record_and_len():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.record("b", 1, 2)
    assert len(trace) == 2


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    assert trace.record("a", 0, 1) is None
    assert len(trace) == 0


def test_spans_filter_by_name():
    trace = Trace()
    trace.record("seek", 0, 1)
    trace.record("transfer", 1, 3)
    trace.record("seek", 3, 4)
    assert len(trace.spans("seek")) == 2


def test_spans_filter_by_attrs():
    trace = Trace()
    trace.record("transfer", 0, 1, drive=1)
    trace.record("transfer", 0, 1, drive=2)
    assert len(trace.spans("transfer", drive=2)) == 1


def test_total_sums_durations():
    trace = Trace()
    trace.record("seek", 0, 2)
    trace.record("seek", 5, 6)
    assert trace.total("seek") == 3


def test_busy_time_merges_overlaps():
    trace = Trace()
    trace.record("x", 0, 4)
    trace.record("x", 2, 6)   # overlaps
    trace.record("x", 10, 11)  # disjoint
    assert trace.busy_time("x") == 7


def test_busy_time_empty_is_zero():
    assert Trace().busy_time() == 0.0


def test_clear():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.clear()
    assert len(trace) == 0


def test_iteration_yields_spans_in_order():
    trace = Trace()
    trace.record("a", 0, 1)
    trace.record("b", 1, 2)
    assert [s.name for s in trace] == ["a", "b"]
