"""Tests for Event, Timeout, and Condition (AllOf/AnyOf) semantics."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().ok

    def test_succeed_sets_value(self, env):
        ev = env.event().succeed(99)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 99

    def test_double_succeed_raises(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_sets_not_ok(self, env):
        exc = RuntimeError("boom")
        ev = env.event().fail(exc)
        ev.defused = True
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_trigger_copies_state(self, env):
        src = env.event().succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.ok and dst.value == "payload"

    def test_processed_after_run(self, env):
        ev = env.event().succeed()
        env.run()
        assert ev.processed

    def test_unhandled_failed_event_crashes_run(self, env):
        env.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failed_event_does_not_crash(self, env):
        ev = env.event().fail(RuntimeError("boom"))
        ev.defused = True
        env.run()  # no raise


class TestEventValuePassing:
    def test_process_receives_event_value(self, env):
        received = []

        def proc(ev):
            received.append((yield ev))

        ev = env.event()
        env.process(proc(ev))
        ev.succeed("hello")
        env.run()
        assert received == ["hello"]

    def test_timeout_value_passed(self, env):
        received = []

        def proc():
            received.append((yield env.timeout(1, value="tick")))

        env.process(proc())
        env.run()
        assert received == ["tick"]

    def test_failed_event_raises_in_process(self, env):
        caught = []

        def proc(ev):
            try:
                yield ev
            except RuntimeError as e:
                caught.append(str(e))

        ev = env.event()
        env.process(proc(ev))
        ev.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        done_at = []

        def proc():
            yield env.all_of([env.timeout(1), env.timeout(3), env.timeout(2)])
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [3]

    def test_any_of_fires_on_first(self, env):
        done_at = []

        def proc():
            yield env.any_of([env.timeout(5), env.timeout(2)])
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [2]

    def test_and_operator(self, env):
        done_at = []

        def proc():
            yield env.timeout(1) & env.timeout(4)
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [4]

    def test_or_operator(self, env):
        done_at = []

        def proc():
            yield env.timeout(1) | env.timeout(4)
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [1]

    def test_all_of_empty_triggers_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_any_of_empty_triggers_immediately(self, env):
        cond = env.any_of([])
        assert cond.triggered

    def test_all_of_value_maps_events_to_values(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        results = []

        def proc():
            results.append((yield env.all_of([t1, t2])))

        env.process(proc())
        env.run()
        value = results[0]
        assert value[t1] == "a"
        assert value[t2] == "b"
        assert len(value) == 2

    def test_any_of_value_contains_only_triggered(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(9, value="b")
        results = []

        def proc():
            results.append((yield env.any_of([t1, t2])))

        env.process(proc())
        env.run()
        value = results[0]
        assert t1 in value
        assert t2 not in value

    def test_failing_child_fails_condition(self, env):
        bad = env.event()
        caught = []

        def proc():
            try:
                yield env.all_of([env.timeout(10), bad])
            except ValueError as e:
                caught.append(str(e))

        env.process(proc())
        bad.fail(ValueError("child failed"))
        env.run()
        assert caught == ["child failed"]

    def test_condition_with_already_processed_event(self, env):
        ev = env.event().succeed("early")
        env.run()
        assert ev.processed
        done = []

        def proc():
            yield env.all_of([ev, env.timeout(1)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [1]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([env.timeout(1), other.timeout(1)])

    def test_late_child_failure_after_any_of_is_defused(self, env):
        bad = env.event()

        def proc():
            yield env.any_of([env.timeout(1), bad])

        env.process(proc())

        def failer():
            yield env.timeout(2)
            bad.fail(RuntimeError("late"))

        env.process(failer())
        env.run()  # must not raise: condition already done, failure defused
