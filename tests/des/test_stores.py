"""Tests for Store / PriorityStore / Container."""

import pytest

from repro.des import Environment
from repro.des.stores import Container, PriorityItem, PriorityStore, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def producer():
            yield store.put("a")
            yield env.timeout(1)
            yield store.put("b")

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_item_arrives(self, env):
        store = Store(env)
        times = []

        def consumer():
            yield store.get()
            times.append(env.now)

        def producer():
            yield env.timeout(5)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [5]

    def test_bounded_put_blocks_until_space(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            yield store.put("b")  # blocks: capacity 1
            times.append(env.now)

        def consumer():
            yield env.timeout(3)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [3]

    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer():
            for item in [1, 2, 3]:
                yield store.put(item)

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [1, 2, 3]

    def test_multiple_consumers_each_get_one(self, env):
        store = Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer("c1"))
        env.process(consumer("c2"))

        def producer():
            yield store.put("x")
            yield store.put("y")

        env.process(producer())
        env.run()
        assert sorted(i for _, i in got) == ["x", "y"]
        assert len({n for n, _ in got}) == 2

    def test_len(self, env):
        store = Store(env)
        store.put("a")
        env.run()
        assert len(store) == 1

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestPriorityStore:
    def test_lowest_leaves_first(self, env):
        store = PriorityStore(env)
        got = []

        def producer():
            for p in [5, 1, 3]:
                yield store.put(p)

        def consumer():
            yield env.timeout(1)  # let all puts land first
            for _ in range(3):
                got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [1, 3, 5]

    def test_priority_item_wrapper(self, env):
        store = PriorityStore(env)
        got = []

        def producer():
            yield store.put(PriorityItem(2, "late"))
            yield store.put(PriorityItem(1, "early"))

        def consumer():
            yield env.timeout(1)
            got.append((yield store.get()).item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["early"]

    def test_priority_item_ordering(self):
        assert PriorityItem(1, "a") < PriorityItem(2, "b")
        assert PriorityItem(1, "a") == PriorityItem(1, "z")


class TestContainer:
    def test_init_level(self, env):
        assert Container(env, capacity=100, init=40).level == 40

    def test_put_and_get_adjust_level(self, env):
        tank = Container(env, capacity=100, init=50)

        def proc():
            yield tank.put(30)
            yield tank.get(70)

        env.process(proc())
        env.run()
        assert tank.level == pytest.approx(10)

    def test_get_blocks_until_level_suffices(self, env):
        tank = Container(env, capacity=100, init=0)
        times = []

        def consumer():
            yield tank.get(50)
            times.append(env.now)

        def producer():
            yield env.timeout(2)
            yield tank.put(25)
            yield env.timeout(2)
            yield tank.put(25)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [4]

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=100, init=90)
        times = []

        def producer():
            yield tank.put(20)  # would overflow
            times.append(env.now)

        def consumer():
            yield env.timeout(3)
            yield tank.get(30)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [3]
        assert tank.level == pytest.approx(80)

    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
        tank = Container(env, capacity=10)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)

    def test_fifo_fairness_no_overtaking(self, env):
        """A large blocked get is not starved by later small gets."""
        tank = Container(env, capacity=100, init=0)
        order = []

        def big():
            yield tank.get(50)
            order.append("big")

        def small():
            yield env.timeout(1)
            yield tank.get(10)
            order.append("small")

        def producer():
            yield env.timeout(2)
            yield tank.put(60)

        env.process(big())
        env.process(small())
        env.process(producer())
        env.run()
        assert order == ["big", "small"]
