"""Tests for Process behaviour: waiting, return values, failures, interrupts."""

import pytest

from repro.des import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


def test_process_is_alive_until_generator_exits(env):
    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_return_value_becomes_event_value(env):
    def proc():
        yield env.timeout(1)
        return 123

    p = env.process(proc())
    env.run()
    assert p.value == 123


def test_waiting_on_another_process(env):
    order = []

    def child():
        yield env.timeout(2)
        order.append("child")
        return "result"

    def parent():
        value = yield env.process(child())
        order.append(("parent", value, env.now))

    env.process(parent())
    env.run()
    assert order == ["child", ("parent", "result", 2)]


def test_process_exception_propagates_to_waiter(env):
    caught = []

    def child():
        yield env.timeout(1)
        raise ValueError("child crashed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as e:
            caught.append(str(e))

    env.process(parent())
    env.run()
    assert caught == ["child crashed"]


def test_unwaited_process_exception_crashes_run(env):
    def proc():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yielding_non_event_raises_inside_process(env):
    caught = []

    def proc():
        try:
            yield 42  # not an event
        except SimulationError as e:
            caught.append("caught")
            yield env.timeout(1)

    env.process(proc())
    env.run()
    assert caught == ["caught"]


def test_waiting_on_already_finished_process(env):
    def quick():
        yield env.timeout(1)
        return "early"

    p = env.process(quick())
    env.run()
    results = []

    def late():
        results.append((yield p))

    env.process(late())
    env.run()
    assert results == ["early"]


def test_non_generator_rejected(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_active_process_visible_during_execution(env):
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        caught = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                caught.append((i.cause, env.now))

        p = env.process(victim())

        def attacker():
            yield env.timeout(3)
            p.interrupt("reason")

        env.process(attacker())
        env.run()
        assert caught == [("reason", 3)]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(5)
            log.append(("done", env.now))

        p = env.process(victim())

        def attacker():
            yield env.timeout(2)
            p.interrupt()

        env.process(attacker())
        env.run()
        assert log == ["interrupted", ("done", 7)]

    def test_interrupting_dead_process_raises(self, env):
        def victim():
            yield env.timeout(1)

        p = env.process(victim())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100)

        p = env.process(victim())
        caught = []

        def parent():
            try:
                yield p
            except Interrupt as i:
                caught.append(i.cause)

        env.process(parent())

        def attacker():
            yield env.timeout(1)
            p.interrupt("bang")

        env.process(attacker())
        env.run()
        assert caught == ["bang"]

    def test_interrupt_leaves_original_event_pending(self, env):
        """The event a process was waiting on is *not* consumed by interrupt."""
        timeout_values = []

        def victim():
            t = env.timeout(10, value="finally")
            try:
                yield t
            except Interrupt:
                pass
            timeout_values.append((yield t))

        p = env.process(victim())

        def attacker():
            yield env.timeout(1)
            p.interrupt()

        env.process(attacker())
        env.run()
        assert timeout_values == ["finally"]
        assert env.now == 10
