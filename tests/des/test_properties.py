"""Property-based tests (hypothesis) for the DES kernel invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.des import Environment, Resource, Trace


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def chain():
        for d in delays:
            yield env.timeout(d)
            observed.append(env.now)

    env.process(chain())
    env.run()
    assert observed == sorted(observed)
    assert abs(observed[-1] - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),  # arrival
            st.floats(min_value=0.1, max_value=100, allow_nan=False),  # hold
        ),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_resource_never_exceeds_capacity(jobs, capacity):
    env = Environment()
    res = Resource(env, capacity)
    max_seen = 0

    def user(arrival, hold):
        nonlocal max_seen
        yield env.timeout(arrival)
        with res.request() as req:
            yield req
            max_seen = max(max_seen, res.count)
            yield env.timeout(hold)

    for arrival, hold in jobs:
        env.process(user(arrival, hold))
    env.run()
    assert max_seen <= capacity
    assert res.count == 0
    assert len(res.queue) == 0


@given(
    st.lists(st.floats(min_value=0.1, max_value=50, allow_nan=False), min_size=1, max_size=15)
)
def test_capacity_one_resource_serializes_total_time(holds):
    """With one server and all arrivals at t=0, makespan == sum of holds."""
    env = Environment()
    res = Resource(env, 1)
    done = []

    def user(hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)
            done.append(env.now)

    for h in holds:
        env.process(user(h))
    env.run()
    assert abs(max(done) - sum(holds)) < 1e-9 * max(1.0, sum(holds))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ).map(lambda p: (min(p), max(p))),
        max_size=30,
    )
)
def test_trace_busy_time_bounded_by_total_and_span(intervals):
    trace = Trace()
    for start, end in intervals:
        trace.record("x", start, end)
    busy = trace.busy_time("x")
    assert busy <= trace.total("x") + 1e-9
    if intervals:
        lo = min(s for s, _ in intervals)
        hi = max(e for _, e in intervals)
        assert busy <= (hi - lo) + 1e-9
    else:
        assert busy == 0.0
