"""Property suite for pluggable event schedulers.

The scheduler contract is total-order equivalence with the binary heap:
every implementation must pop ``(time, priority, eid, event)`` entries in
identical order, including the FIFO event-id tie-break.  Hypothesis
drives the calendar queue against ``HeapScheduler`` with adversarial tie
patterns, interleaved push/pop, and full environment runs (timeouts,
cancellation via process interrupts, schedule-during-pop callbacks).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import CalendarQueue, Environment, HeapScheduler, Interrupt, resolve_scheduler
from repro.des.scheduler import SCHEDULERS

# -- strategies -------------------------------------------------------------

# Times drawn from a tiny pool maximize ties; mixed magnitudes stress the
# calendar queue's bucket-width estimate and far-future clamping.
_tie_times = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0])
_wide_times = st.one_of(
    st.sampled_from([0.0, 1e-12, 0.5, 1.0, 1e6, 1e300, math.inf]),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)


def _ops(times):
    """A push/pop program: floats are pushes (time), None is a pop."""
    return st.lists(st.one_of(times, st.none()), min_size=1, max_size=200)


def _run_program(ops):
    heap, calendar = HeapScheduler(), CalendarQueue()
    eid = 0
    popped = []
    for op in ops:
        if op is None:
            if not len(heap):
                continue
            a, b = heap.pop(), calendar.pop()
            assert a == b
            popped.append(a)
        else:
            entry = (op, eid % 2, eid, None)
            eid += 1
            heap.push(entry)
            calendar.push(entry)
    while len(heap):
        a, b = heap.pop(), calendar.pop()
        assert a == b
        popped.append(a)
    assert len(calendar) == 0
    return popped


@settings(max_examples=200, deadline=None)
@given(_ops(_tie_times))
def test_calendar_matches_heap_under_adversarial_ties(ops):
    # The heap is the oracle: with interleaved pops the popped sequence as
    # a whole need not be sorted (later pushes may precede earlier pops),
    # but a pop-only suffix must be, ids breaking ties FIFO.
    popped = _run_program([op for op in ops if op is not None])
    assert popped == sorted(popped, key=lambda e: e[:3])
    _run_program(ops)


@settings(max_examples=200, deadline=None)
@given(_ops(_wide_times))
def test_calendar_matches_heap_across_magnitudes(ops):
    _run_program(ops)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=60),
    st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=4),
)
def test_schedule_during_pop(times, reschedules):
    """Pops that trigger pushes (the run loop's shape) stay in lockstep."""
    heap, calendar = HeapScheduler(), CalendarQueue()
    eid = 0
    for t in times:
        entry = (t, 1, eid, None)
        eid += 1
        heap.push(entry)
        calendar.push(entry)
    while len(heap):
        a, b = heap.pop(), calendar.pop()
        assert a == b
        # Imitate event callbacks scheduling relative to the popped time.
        for delay in reschedules:
            if eid >= 200:
                break
            entry = (a[0] + delay, 1, eid, None)
            eid += 1
            heap.push(entry)
            calendar.push(entry)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=20.0, allow_nan=False), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
def test_environment_runs_identically_with_timeout_cancellation(spec):
    """Full-kernel oracle: waiters interrupted mid-timeout leave cancelled
    entries in the schedule; both schedulers must drain them identically."""

    def run(scheduler):
        env = Environment(scheduler=scheduler)
        log = []

        def waiter(name, delay):
            try:
                yield env.timeout(delay)
                log.append((name, env.now, "fired"))
            except Interrupt:
                log.append((name, env.now, "cancelled"))
                yield env.timeout(0.25)
                log.append((name, env.now, "requeued"))

        procs = []
        for i, (delay, _cancel) in enumerate(spec):
            procs.append(env.process(waiter(i, delay)))

        def canceller():
            yield env.timeout(5.0)
            for proc, (_delay, cancel) in zip(procs, spec):
                if cancel and proc.is_alive:
                    proc.interrupt("cancelled")

        env.process(canceller())
        env.run()
        return log, env.now, env.events_processed

    assert run("heapq") == run("calendar")


# -- unit behaviour ---------------------------------------------------------


def test_resize_grows_and_shrinks_through_thresholds():
    q = CalendarQueue()
    for i in range(500):
        q.push((float(i % 7), 1, i, None))
    assert q._nbuckets >= 256
    out = [q.pop() for _ in range(500)]
    assert out == sorted(out, key=lambda e: e[:3])
    assert q._nbuckets <= CalendarQueue.MIN_BUCKETS * 2


def test_empty_pop_raises_indexerror_like_heappop():
    for factory in SCHEDULERS.values():
        with pytest.raises(IndexError):
            factory().pop()


def test_peek_time_matches_heap():
    heap, calendar = HeapScheduler(), CalendarQueue()
    assert heap.peek_time() == calendar.peek_time() == math.inf
    for eid, t in enumerate([5.0, 2.0, 8.0, 2.0]):
        heap.push((t, 1, eid, None))
        calendar.push((t, 1, eid, None))
        assert heap.peek_time() == calendar.peek_time()


def test_resolve_scheduler_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown scheduler"):
        resolve_scheduler("fibonacci")


def test_resolve_scheduler_reads_environment_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert isinstance(resolve_scheduler(), CalendarQueue)
    assert isinstance(Environment().scheduler, CalendarQueue)
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert isinstance(resolve_scheduler(), HeapScheduler)


def test_environment_accepts_scheduler_instance():
    sched = CalendarQueue()
    env = Environment(scheduler=sched)
    assert env.scheduler is sched
    assert not env._heapmode


def test_calendar_queue_validates_construction():
    with pytest.raises(ValueError):
        CalendarQueue(nbuckets=0)
    with pytest.raises(ValueError):
        CalendarQueue(width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(width=math.inf)
