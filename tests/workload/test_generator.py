"""Tests for the workload generator and Workload container."""

import numpy as np
import pytest

from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def small_workload():
    # Small but structurally faithful workload: fast enough for unit tests.
    return generate_workload(
        num_objects=2000,
        num_requests=60,
        request_size_bounds=(10, 20),
        seed=7,
    )


class TestParams:
    def test_defaults_match_paper(self):
        p = WorkloadParams()
        assert p.num_objects == 30_000
        assert p.num_requests == 300
        assert p.request_size_bounds == (100, 150)

    def test_request_larger_than_catalog_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(num_objects=50, request_size_bounds=(100, 150))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(zipf_alpha=-0.5)

    def test_with_alpha(self):
        assert WorkloadParams().with_alpha(0.9).zipf_alpha == 0.9


class TestGenerator:
    def test_counts(self, small_workload):
        assert small_workload.num_objects == 2000
        assert small_workload.num_requests == 60

    def test_request_sizes_within_bounds(self, small_workload):
        for r in small_workload.requests:
            assert 10 <= len(r) <= 20

    def test_no_duplicate_objects_within_request(self, small_workload):
        for r in small_workload.requests:
            assert len(set(r.object_ids)) == len(r)

    def test_mean_object_size_hits_target(self):
        w = generate_workload(
            num_objects=5000, num_requests=10, request_size_bounds=(5, 10),
            mean_object_size_mb=1780.0, seed=3,
        )
        assert np.asarray(w.catalog.sizes_mb).mean() == pytest.approx(1780.0)

    def test_without_mean_target_uses_raw_power_law(self):
        w = generate_workload(
            num_objects=5000, num_requests=10, request_size_bounds=(5, 10),
            mean_object_size_mb=None, object_size_bounds_mb=(100.0, 1000.0), seed=3,
        )
        sizes = np.asarray(w.catalog.sizes_mb)
        assert sizes.min() >= 100.0
        assert sizes.max() <= 1000.0

    def test_reproducibility(self):
        kwargs = dict(num_objects=500, num_requests=20, request_size_bounds=(5, 10), seed=11)
        a = generate_workload(**kwargs)
        b = generate_workload(**kwargs)
        assert np.array_equal(a.catalog.sizes_mb, b.catalog.sizes_mb)
        assert all(x.object_ids == y.object_ids for x, y in zip(a.requests, b.requests))

    def test_different_seeds_differ(self):
        a = generate_workload(num_objects=500, num_requests=20, request_size_bounds=(5, 10), seed=1)
        b = generate_workload(num_objects=500, num_requests=20, request_size_bounds=(5, 10), seed=2)
        assert not np.array_equal(a.catalog.sizes_mb, b.catalog.sizes_mb)

    def test_object_probabilities_consistent_with_requests(self, small_workload):
        expected = small_workload.requests.object_probabilities(small_workload.num_objects)
        assert np.allclose(expected, small_workload.catalog.probabilities)

    def test_zipf_popularity_rank_order(self, small_workload):
        p = small_workload.requests.probabilities
        assert np.all(np.diff(p) <= 1e-15)


class TestWorkloadDerivations:
    def test_with_scaled_sizes(self, small_workload):
        scaled = small_workload.with_scaled_sizes(2.0)
        assert scaled.average_request_size_mb == pytest.approx(
            2.0 * small_workload.average_request_size_mb
        )
        # request memberships unchanged
        assert scaled.requests[0].object_ids == small_workload.requests[0].object_ids

    def test_scale_factor_must_be_positive(self, small_workload):
        with pytest.raises(ValueError):
            small_workload.with_scaled_sizes(0)

    def test_with_zipf_alpha_preserves_membership(self, small_workload):
        reskewed = small_workload.with_zipf_alpha(1.0)
        assert reskewed.requests[0].object_ids == small_workload.requests[0].object_ids
        p = reskewed.requests.probabilities
        assert p[0] / p[-1] == pytest.approx(len(p) ** 1.0)

    def test_with_zipf_alpha_zero_uniform(self, small_workload):
        uniform = small_workload.with_zipf_alpha(0.0)
        p = uniform.requests.probabilities
        assert p == pytest.approx(np.full(len(p), 1.0 / len(p)))

    def test_average_request_size_positive(self, small_workload):
        assert small_workload.average_request_size_mb > 0
