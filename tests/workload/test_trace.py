"""Tests for workload JSON round-tripping."""

import numpy as np
import pytest

from repro.workload import (
    dump_workload,
    generate_workload,
    load_workload,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture
def workload():
    return generate_workload(
        num_objects=200, num_requests=10, request_size_bounds=(3, 6), seed=5
    )


def test_round_trip_dict(workload):
    clone = workload_from_dict(workload_to_dict(workload))
    assert clone.num_objects == workload.num_objects
    assert np.allclose(clone.catalog.sizes_mb, workload.catalog.sizes_mb)
    assert all(a.object_ids == b.object_ids for a, b in zip(clone.requests, workload.requests))
    assert np.allclose(clone.requests.probabilities, workload.requests.probabilities)
    assert clone.params == workload.params


def test_round_trip_file(tmp_path, workload):
    path = tmp_path / "workload.json"
    dump_workload(workload, path)
    clone = load_workload(path)
    assert np.allclose(clone.catalog.sizes_mb, workload.catalog.sizes_mb)
    assert clone.params == workload.params


def test_unknown_version_rejected(workload):
    data = workload_to_dict(workload)
    data["format_version"] = 99
    with pytest.raises(ValueError):
        workload_from_dict(data)


def test_params_optional(workload):
    data = workload_to_dict(workload)
    data["params"] = None
    clone = workload_from_dict(data)
    assert clone.params is None
    assert clone.num_objects == workload.num_objects


class TestCsvImport:
    def _write(self, tmp_path, objects_rows, requests_rows):
        objects_csv = tmp_path / "objects.csv"
        requests_csv = tmp_path / "requests.csv"
        objects_csv.write_text("object_id,size_mb\n" + "\n".join(objects_rows) + "\n")
        requests_csv.write_text(
            "request_id,object_id,probability\n" + "\n".join(requests_rows) + "\n"
        )
        return objects_csv, requests_csv

    def test_basic_import(self, tmp_path):
        from repro.workload import load_workload_csv

        o, r = self._write(
            tmp_path,
            ["0,100.0", "1,250.5", "2,30.0"],
            ["0,0,0.7", "0,2,0.7", "1,1,0.3"],
        )
        w = load_workload_csv(o, r)
        assert w.num_objects == 3
        assert w.num_requests == 2
        assert w.catalog.size_of(1) == 250.5
        assert w.requests[0].object_ids == (0, 2)
        assert w.requests.probabilities[0] == pytest.approx(0.7)

    def test_sparse_object_ids_rejected(self, tmp_path):
        from repro.workload import load_workload_csv

        o, r = self._write(tmp_path, ["0,10.0", "5,20.0"], ["0,0,1.0"])
        with pytest.raises(ValueError, match="dense"):
            load_workload_csv(o, r)

    def test_inconsistent_probability_rejected(self, tmp_path):
        from repro.workload import load_workload_csv

        o, r = self._write(
            tmp_path, ["0,10.0", "1,20.0"], ["0,0,0.5", "0,1,0.9"]
        )
        with pytest.raises(ValueError, match="inconsistent"):
            load_workload_csv(o, r)

    def test_imported_workload_simulates(self, tmp_path):
        from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
        from repro.placement import ObjectProbabilityPlacement
        from repro.sim import SimulationSession
        from repro.workload import load_workload_csv

        o, r = self._write(
            tmp_path,
            [f"{i},{50.0 + i}" for i in range(20)],
            [f"{rid},{obj},{1.0 + rid}" for rid in range(4) for obj in range(rid, rid + 5)],
        )
        workload = load_workload_csv(o, r)
        spec = SystemSpec(
            num_libraries=1,
            library=LibrarySpec(num_drives=2, num_tapes=4, tape=TapeSpec(capacity_mb=2000, max_rewind_s=10)),
        )
        result = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        ).evaluate(num_samples=5, seed=1)
        assert result.avg_bandwidth_mb_s > 0
