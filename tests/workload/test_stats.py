"""Tests for workload characterization."""

import numpy as np
import pytest

from repro.catalog import ObjectCatalog, Request, RequestSet
from repro.hardware import SystemSpec
from repro.workload import (
    Workload,
    characterize,
    fit_zipf_alpha,
    generate_workload,
    zipf_probabilities,
)


class TestFitZipfAlpha:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.7, 1.0])
    def test_recovers_true_exponent(self, alpha):
        p = zipf_probabilities(300, alpha)
        assert fit_zipf_alpha(p) == pytest.approx(alpha, abs=0.05)

    def test_order_invariant(self):
        p = zipf_probabilities(100, 0.5)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(p)
        assert fit_zipf_alpha(shuffled) == pytest.approx(fit_zipf_alpha(p))

    def test_degenerate_inputs(self):
        assert fit_zipf_alpha(np.array([1.0])) == 0.0
        assert fit_zipf_alpha(np.array([0.5, 0.0])) == 0.0


class TestCharacterize:
    @pytest.fixture(scope="class")
    def profile(self):
        workload = generate_workload(
            num_objects=2000, num_requests=80, request_size_bounds=(10, 25),
            zipf_alpha=0.6, seed=17,
        )
        return characterize(workload)

    def test_counts(self, profile):
        assert profile.num_objects == 2000
        assert profile.num_requests == 80

    def test_fitted_alpha_close_to_generated(self, profile):
        assert profile.fitted_zipf_alpha == pytest.approx(0.6, abs=0.08)

    def test_size_percentiles_ordered(self, profile):
        assert (
            profile.median_object_size_mb
            <= profile.mean_object_size_mb
            <= profile.p95_object_size_mb
            <= profile.max_object_size_mb
        )

    def test_fractions_in_range(self, profile):
        assert 0 <= profile.shared_object_fraction <= 1
        assert 0 <= profile.cold_object_fraction <= 1
        assert profile.mean_appearances >= 1.0

    def test_format_mentions_key_numbers(self, profile):
        out = profile.format()
        assert "Zipf alpha" in out
        assert "sharing" in out

    def test_tape_pressure(self, profile):
        pressure = profile.tape_pressure(SystemSpec.table1())
        assert 0 < pressure["data_to_total_capacity"] < 1
        assert pressure["max_object_to_tape"] < 1

    def test_handcrafted_sharing(self):
        catalog = ObjectCatalog([10.0] * 4)
        requests = RequestSet(
            [Request(0, (0, 1), 0.5), Request(1, (1, 2), 0.5)]
        )
        profile = characterize(Workload(catalog, requests))
        # objects 0,1,2 referenced; only object 1 shared; object 3 cold
        assert profile.shared_object_fraction == pytest.approx(1 / 3)
        assert profile.cold_object_fraction == pytest.approx(1 / 4)
        assert profile.mean_appearances == pytest.approx(4 / 3)
