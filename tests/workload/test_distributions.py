"""Tests for workload distributions (bounded Pareto, Zipf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    bounded_pareto,
    bounded_pareto_int,
    bounded_pareto_mean,
    zipf_probabilities,
)


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        rng = np.random.default_rng(0)
        x = bounded_pareto(rng, 10_000, 100.0, 20_000.0, 1.1)
        assert x.min() >= 100.0
        assert x.max() <= 20_000.0

    def test_empirical_mean_matches_analytic(self):
        rng = np.random.default_rng(1)
        x = bounded_pareto(rng, 200_000, 100.0, 20_000.0, 1.1)
        analytic = bounded_pareto_mean(100.0, 20_000.0, 1.1)
        assert x.mean() == pytest.approx(analytic, rel=0.03)

    def test_skewed_toward_lower_bound(self):
        """Power law: the median is far below the midpoint of the range."""
        rng = np.random.default_rng(2)
        x = bounded_pareto(rng, 50_000, 1.0, 1000.0, 1.1)
        assert np.median(x) < 10.0

    def test_reproducible_with_seed(self):
        a = bounded_pareto(np.random.default_rng(7), 100, 1, 10)
        b = bounded_pareto(np.random.default_rng(7), 100, 1, 10)
        assert np.array_equal(a, b)

    def test_invalid_bounds_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 10, 0, 10)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 10, 10, 10)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 10, 1, 10, shape=0)

    @given(
        lower=st.floats(min_value=0.5, max_value=100),
        ratio=st.floats(min_value=1.5, max_value=1000),
        shape=st.floats(min_value=0.3, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_hold_for_any_parameters(self, lower, ratio, shape, seed):
        rng = np.random.default_rng(seed)
        upper = lower * ratio
        x = bounded_pareto(rng, 500, lower, upper, shape)
        assert np.all(x >= lower * (1 - 1e-12))
        assert np.all(x <= upper * (1 + 1e-12))


class TestBoundedParetoInt:
    def test_range_inclusive(self):
        rng = np.random.default_rng(3)
        x = bounded_pareto_int(rng, 50_000, 100, 150, 1.1)
        assert x.min() == 100
        assert x.max() == 150
        assert x.dtype == np.int64

    def test_upper_bound_has_mass(self):
        rng = np.random.default_rng(4)
        x = bounded_pareto_int(rng, 100_000, 1, 3, 0.5)
        assert np.any(x == 3)

    def test_power_law_favors_small_counts(self):
        rng = np.random.default_rng(5)
        x = bounded_pareto_int(rng, 50_000, 100, 150, 1.1)
        assert np.mean(x < 125) > 0.5


class TestZipf:
    def test_normalized(self):
        p = zipf_probabilities(300, 0.3)
        assert p.sum() == pytest.approx(1.0)

    def test_alpha_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert p == pytest.approx(np.full(10, 0.1))

    def test_monotone_decreasing_in_rank(self):
        p = zipf_probabilities(100, 0.7)
        assert np.all(np.diff(p) <= 0)

    def test_higher_alpha_more_skewed(self):
        mild = zipf_probabilities(100, 0.3)
        steep = zipf_probabilities(100, 1.0)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_exact_zipf_form(self):
        p = zipf_probabilities(3, 1.0)
        c = 1.0 / (1 + 0.5 + 1 / 3)
        assert p == pytest.approx([c, c / 2, c / 3])

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 0.5)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.1)
