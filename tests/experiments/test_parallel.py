"""Determinism and metamorphic tests for the sweep-execution engine.

The engine's contract is that a sweep's numbers depend only on the sweep
specification and its root seed — never on worker count, point order, or
whether results came from workers or the on-disk cache.  These tests pin
that contract with bit-identical (``==``, not approx) comparisons on a
deliberately tiny workload.
"""

import dataclasses
import os
import random

import pytest

from repro.experiments.parallel import (
    EngineOptions,
    PointSpec,
    SweepSpec,
    as_kwargs,
    evaluate_point,
    resolve_shard_workers,
    resolve_workers,
    run_sweep,
    spawn_seed,
)
from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
from repro.obs import MetricsRegistry
from repro.workload import WorkloadParams

#: Tiny-but-structured sweep inputs: three schemes, two axis cells, small
#: enough that a full sweep runs in well under a second.
TINY_WORKLOAD = WorkloadParams(
    num_objects=250,
    num_requests=12,
    object_size_bounds_mb=(50.0, 500.0),
    mean_object_size_mb=150.0,
    request_size_bounds=(3, 8),
    seed=7,
)
TINY_SPEC = SystemSpec(
    num_libraries=2,
    library=LibrarySpec(
        num_drives=4, num_tapes=12, tape=TapeSpec(capacity_mb=20_000, max_rewind_s=10)
    ),
)
SCHEMES = [
    ("parallel_batch", (("m", 2),)),
    ("object_probability", ()),
    ("cluster_probability", ()),
]


def tiny_sweep(root_seed=0, alphas=(0.0, 1.0), m=2):
    points = []
    for a in alphas:
        for scheme, kwargs in SCHEMES:
            if scheme == "parallel_batch":
                kwargs = (("m", m),)
            points.append(
                PointSpec(
                    sweep="tiny",
                    axis="alpha",
                    value=a,
                    scheme=scheme,
                    scheme_kwargs=kwargs,
                    workload=TINY_WORKLOAD,
                    spec=TINY_SPEC,
                    alpha=a,
                    num_samples=10,
                )
            )
    return SweepSpec(name="tiny", points=tuple(points), root_seed=root_seed)


def fingerprint(res):
    """Point identity -> exact result numbers, order-independent."""
    return {
        (r.point.scheme, r.point.value): (
            r.result.avg_bandwidth_mb_s,
            r.result.avg_response_s,
            r.result.avg_switch_s,
            r.result.avg_seek_s,
        )
        for r in res
    }


class TestSpawnSeed:
    def test_same_group_same_seed(self):
        assert spawn_seed(0, ("alpha", 0.3, 0)) == spawn_seed(0, ("alpha", 0.3, 0))

    def test_different_group_different_seed(self):
        assert spawn_seed(0, ("alpha", 0.3, 0)) != spawn_seed(0, ("alpha", 0.6, 0))

    def test_different_root_different_seed(self):
        assert spawn_seed(0, ("alpha", 0.3, 0)) != spawn_seed(1, ("alpha", 0.3, 0))

    def test_schemes_in_one_cell_share_their_seed(self):
        # Paired-stream comparisons: the schemes compared at one axis value
        # must sample identical request streams.
        jobs = tiny_sweep().jobs()
        by_cell = {}
        for point, seed in jobs:
            by_cell.setdefault(point.value, set()).add(seed)
        for cell, seeds in by_cell.items():
            assert len(seeds) == 1, f"cell {cell} got multiple seeds"
        assert len({next(iter(s)) for s in by_cell.values()}) == len(by_cell)

    def test_seed_independent_of_sweep_membership(self):
        # Adding/removing points never reseeds the survivors.
        full = dict((p.group(), s) for p, s in tiny_sweep(alphas=(0.0, 0.5, 1.0)).jobs())
        sub = dict((p.group(), s) for p, s in tiny_sweep(alphas=(0.0, 1.0)).jobs())
        for group, seed in sub.items():
            assert full[group] == seed


class TestDeterminism:
    def test_bit_identical_across_worker_counts(self):
        serial = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        parallel = run_sweep(tiny_sweep(), EngineOptions(workers=4))
        assert fingerprint(serial) == fingerprint(parallel)

    def test_bit_identical_under_shuffled_point_order(self):
        spec = tiny_sweep()
        shuffled_points = list(spec.points)
        random.Random(42).shuffle(shuffled_points)
        shuffled = dataclasses.replace(spec, points=tuple(shuffled_points))
        a = run_sweep(spec, EngineOptions(workers=1))
        b = run_sweep(shuffled, EngineOptions(workers=2))
        assert fingerprint(a) == fingerprint(b)

    def test_results_returned_in_declaration_order(self):
        spec = tiny_sweep()
        res = run_sweep(spec, EngineOptions(workers=1))
        assert [r.point for r in res] == list(spec.points)

    def test_root_seed_changes_results(self):
        a = run_sweep(tiny_sweep(root_seed=0), EngineOptions(workers=1))
        b = run_sweep(tiny_sweep(root_seed=1), EngineOptions(workers=1))
        assert fingerprint(a) != fingerprint(b)

    def test_direct_evaluate_matches_engine(self):
        spec = tiny_sweep()
        res = run_sweep(spec, EngineOptions(workers=1))
        point, seed = spec.jobs()[0]
        direct = evaluate_point(point, seed)
        engine = res.results[0].result
        assert direct.avg_bandwidth_mb_s == engine.avg_bandwidth_mb_s


class TestCacheBehavior:
    def test_warm_rerun_is_bit_identical_and_all_hits(self, tmp_path):
        opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
        cold = run_sweep(tiny_sweep(), opts)
        assert cold.stats["cache_misses"] == len(cold)
        assert cold.stats["cache_hits"] == 0

        warm = run_sweep(tiny_sweep(), opts)
        assert warm.stats["cache_hits"] == len(warm)
        assert warm.stats["cache_misses"] == 0
        assert fingerprint(cold) == fingerprint(warm)
        assert all(r.cached for r in warm)

    def test_hits_and_misses_published_to_registry(self, tmp_path):
        opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
        registry = MetricsRegistry()
        run_sweep(tiny_sweep(), opts, registry=registry)
        run_sweep(tiny_sweep(), opts, registry=registry)
        n = len(tiny_sweep())
        assert registry.counter("sweep.points").value == 2 * n
        assert registry.counter("sweep.cache_misses").value == n
        assert registry.counter("sweep.cache_hits").value == n

    def test_refresh_recomputes_but_restores_cache(self, tmp_path):
        opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
        run_sweep(tiny_sweep(), opts)
        refreshed = run_sweep(
            tiny_sweep(), EngineOptions(workers=1, cache_dir=str(tmp_path), refresh=True)
        )
        assert refreshed.stats["cache_hits"] == 0
        # refresh still stores, so a subsequent normal run hits everything
        warm = run_sweep(tiny_sweep(), opts)
        assert warm.stats["cache_hits"] == len(warm)

    def test_editing_one_scheme_invalidates_only_its_points(self, tmp_path):
        # The metamorphic core of the cache-key design: keys hash the full
        # point config, so changing parallel_batch's m recomputes exactly
        # the parallel_batch points while both baselines stay cached.
        opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
        run_sweep(tiny_sweep(m=2), opts)

        edited = run_sweep(tiny_sweep(m=3), opts)
        n_pb = sum(1 for p in tiny_sweep().points if p.scheme == "parallel_batch")
        assert edited.stats["cache_misses"] == n_pb
        assert edited.stats["cache_hits"] == len(edited) - n_pb
        for r in edited:
            assert r.cached == (r.point.scheme != "parallel_batch")

    def test_no_cache_dir_means_no_caching(self):
        res = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        assert res.stats["cache_dir"] is None
        assert res.stats["cache_hits"] == 0


class TestEngineMechanics:
    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_on_result_hook_runs_in_parent_even_with_workers(self):
        # Hooks (closures over local state) are unpicklable by design; the
        # engine must run them parent-side, not ship them to workers.
        seen = []
        res = run_sweep(
            tiny_sweep(),
            EngineOptions(workers=2),
            on_result=lambda r: seen.append(r.point.scheme),
        )
        assert len(seen) == len(res)
        assert "fallback" not in res.stats

    def test_unpicklable_job_degrades_to_serial(self):
        # A job payload that cannot cross the process boundary must degrade
        # to in-process serial execution, not crash the sweep.
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        base = tiny_sweep(alphas=(0.0,))
        poisoned = tuple(
            dataclasses.replace(p, run_kwargs=as_kwargs(debug=Unpicklable()))
            for p in base.points
        )
        spec = dataclasses.replace(base, points=poisoned)
        res = run_sweep(spec, EngineOptions(workers=2))
        assert res.stats.get("fallback") == "serial"
        assert fingerprint(res) == fingerprint(
            run_sweep(base, EngineOptions(workers=1))
        )

    def test_select_and_one(self):
        res = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        pb = res.select(scheme="parallel_batch")
        assert len(pb) == 2
        assert res.one(scheme="parallel_batch", value=0.0).avg_bandwidth_mb_s > 0
        with pytest.raises(KeyError):
            res.one(scheme="parallel_batch")

    def test_stats_shape(self):
        res = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        stats = res.stats
        assert stats["points"] == len(tiny_sweep())
        assert stats["workers"] == 1
        assert stats["wall_s"] > 0
        assert stats["points_per_s"] > 0


class TestFleetTelemetry:
    """Cross-process fleet aggregation: merged counters and digests must be
    independent of worker count, point order, and cache state."""

    def _aggregates_equal(self, a, b):
        # Integer state (digest buckets, counts) must match exactly; the
        # float running sums only up to addition rounding.
        assert a["counters"].keys() == b["counters"].keys()
        for name in a["counters"]:
            assert a["counters"][name] == pytest.approx(
                b["counters"][name], rel=1e-12
            ), name
        for name in set(a["digests"]) | set(b["digests"]):
            da, db = dict(a["digests"][name]), dict(b["digests"][name])
            sa, sb = da.pop("sum"), db.pop("sum")
            assert da == db, name
            assert sa == pytest.approx(sb, rel=1e-9)
        assert a["histograms"] == b["histograms"]
        assert a["gauges"].keys() == b["gauges"].keys()

    def test_fleet_identical_across_worker_counts(self):
        serial = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        fanned = run_sweep(tiny_sweep(), EngineOptions(workers=2))
        assert "fallback" not in fanned.stats
        assert fingerprint(serial) == fingerprint(fanned)
        self._aggregates_equal(serial.fleet.aggregates(), fanned.fleet.aggregates())

    def test_fleet_identical_under_shuffled_point_order(self):
        base = tiny_sweep()
        shuffled_points = list(base.points)
        random.Random(5).shuffle(shuffled_points)
        shuffled = dataclasses.replace(base, points=tuple(shuffled_points))
        a = run_sweep(base, EngineOptions(workers=1)).fleet
        b = run_sweep(shuffled, EngineOptions(workers=1)).fleet
        self._aggregates_equal(a.aggregates(), b.aggregates())

    def test_fleet_identical_between_cached_and_fresh(self, tmp_path):
        opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
        cold = run_sweep(tiny_sweep(), opts).fleet
        warm = run_sweep(tiny_sweep(), opts).fleet
        cold_agg, warm_agg = cold.aggregates(), warm.aggregates()
        # Cache bookkeeping differs (hits vs misses) — everything derived
        # from the point *results* must not.
        for agg in (cold_agg, warm_agg):
            agg["counters"].pop("sweep.cache_hits", None)
            agg["counters"].pop("sweep.cache_misses", None)
        self._aggregates_equal(cold_agg, warm_agg)

    def test_fleet_latency_digests_cover_all_samples(self):
        res = run_sweep(tiny_sweep(), EngineOptions(workers=1))
        n_samples = sum(len(r.result) for r in res)
        sojourn = res.fleet.digests["latency.sojourn_s"]
        assert sojourn.count == n_samples
        assert res.fleet.counter("requests.completed") == n_samples

    def test_point_metadata_travels(self):
        res = run_sweep(tiny_sweep(), EngineOptions(workers=2))
        assert len(res.fleet.points) == len(res)
        schemes = {p["scheme"] for p in res.fleet.points}
        assert schemes == {s for s, _ in SCHEMES}


class TestCrossProcessCacheCounters:
    """Satellite regression: cache hit/miss counters must count *every*
    process's lookups, not just the parent's (the old parent-side prefilter
    undercounted under workers > 1)."""

    def test_worker_cache_io_counted_in_fleet(self, tmp_path):
        opts = EngineOptions(workers=2, cache_dir=str(tmp_path))
        n = len(tiny_sweep())

        cold = run_sweep(tiny_sweep(), opts)
        assert "fallback" not in cold.stats
        assert cold.fleet.counter("sweep.points") == n
        assert cold.fleet.counter("sweep.cache_misses") == n
        assert cold.fleet.counter("sweep.cache_hits") == 0

        warm = run_sweep(tiny_sweep(), opts)
        assert warm.fleet.counter("sweep.cache_hits") == n
        assert warm.fleet.counter("sweep.cache_misses") == 0
        assert warm.fleet.cache_hit_rate == 1.0

    def test_fleet_and_parent_registry_totals_agree(self, tmp_path):
        opts = EngineOptions(workers=2, cache_dir=str(tmp_path))
        registry = MetricsRegistry()
        run_sweep(tiny_sweep(), opts, registry=registry)
        res = run_sweep(tiny_sweep(), opts, registry=registry)
        n = len(tiny_sweep())
        # Parent-side registry (summed over both runs)...
        assert registry.counter("sweep.points").value == 2 * n
        assert registry.counter("sweep.cache_hits").value == n
        assert registry.counter("sweep.cache_misses").value == n
        # ...and the per-run fleet view agree on totals.
        assert res.fleet.counter("sweep.points") == n
        assert res.fleet.counter("sweep.cache_hits") == n


class TestRedundancyPoints:
    """Metamorphic coverage for `PointSpec.redundancy` (ISSUE 8).

    The field participates in the cache key (an r=2 point can never alias
    an r=1 or unwrapped point), degenerate r=1 evaluation is bit-identical
    to the unwrapped point's, and redundant chaos sweeps stay bit-identical
    across worker counts.
    """

    def _point(self, redundancy, value="r", seed_group=("red", 0)):
        return PointSpec(
            sweep="red",
            axis="level",
            value=value,
            scheme="parallel_batch",
            scheme_kwargs=(("m", 2),),
            workload=TINY_WORKLOAD,
            spec=TINY_SPEC,
            kind="chaos",
            run_kwargs=(
                ("mtbf_h", 4.0),
                ("mttr_h", 0.5),
                ("num_arrivals", 10),
                ("policy", "concurrent"),
                ("rate_per_hour", 8.0),
            ),
            seed_group=seed_group,
            redundancy=redundancy,
        )

    def test_redundancy_enters_the_cache_key(self):
        keys = {
            self._point(red).cache_key(seed=123)
            for red in (None, "r=1", "r=2", "k=2,n=3")
        }
        assert len(keys) == 4

    def test_degenerate_point_matches_unwrapped_bit_identically(self):
        unwrapped = evaluate_point(self._point(None), seed=5)
        degenerate = evaluate_point(self._point("r=1"), seed=5)
        assert [r.sojourn_s for r in degenerate.records] == [
            r.sojourn_s for r in unwrapped.records
        ]
        assert degenerate.mean_sojourn_s == unwrapped.mean_sojourn_s
        assert degenerate.availability == unwrapped.availability

    def test_r2_actually_takes_the_redundant_path(self):
        """No r=1/r=2 aliasing in behavior either: the r=2 point runs the
        redundant serve path (instruments registered, every request grouped)
        while the unwrapped one never touches it."""
        unwrapped = evaluate_point(self._point(None), seed=5)
        redundant = evaluate_point(self._point("r=2"), seed=5)
        assert redundant.registry.counters["redundancy.requests"].value == 10
        assert not any(
            name.startswith("redundancy.") for name in unwrapped.registry.counters
        )

    def test_redundant_sweep_bit_identical_across_worker_counts(self):
        def sweep():
            points = tuple(
                self._point(red, value=red or "none", seed_group=("red", 0))
                for red in (None, "r=1", "r=2")
            )
            return SweepSpec(name="red", points=points, root_seed=0)

        def chaos_fingerprint(res):
            return {
                r.point.value: (
                    r.result.mean_sojourn_s,
                    r.result.availability,
                    tuple(rec.sojourn_s for rec in r.result.records),
                )
                for r in res
            }

        serial = run_sweep(sweep(), EngineOptions(workers=1))
        parallel = run_sweep(sweep(), EngineOptions(workers=4))
        assert chaos_fingerprint(serial) == chaos_fingerprint(parallel)

    def test_incremental_points_reject_redundancy(self):
        point = dataclasses.replace(
            self._point("r=2"),
            kind="incremental",
            run_kwargs=(("m", 2), ("num_epochs", 2), ("strategy", "naive")),
        )
        with pytest.raises(ValueError):
            evaluate_point(point, seed=5)


class TestShardWorkers:
    """Per-point DES sharding is execution configuration, never identity:
    the same open point must produce bit-identical results and the same
    cache key whether it runs unsharded or across library shards."""

    def _open_sweep(self, root_seed=0):
        point = PointSpec(
            sweep="tiny-open",
            axis="rate",
            value=60.0,
            scheme="object_probability",
            workload=TINY_WORKLOAD,
            spec=TINY_SPEC,
            kind="open",
            run_kwargs=as_kwargs(
                policy="concurrent", rate_per_hour=60.0, num_arrivals=8
            ),
        )
        return SweepSpec(name="tiny-open", points=(point,), root_seed=root_seed)

    @staticmethod
    def _open_fingerprint(res):
        return {
            (r.point.scheme, r.point.value): [
                (rec.request_id, rec.arrival_s, rec.start_s, rec.finish_s)
                for rec in r.result.records
            ]
            for r in res
        }

    def test_resolve_shard_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
        assert resolve_shard_workers() == 3
        assert resolve_shard_workers(2) == 2  # explicit beats env
        monkeypatch.delenv("REPRO_SHARD_WORKERS")
        assert resolve_shard_workers() == 1
        with pytest.raises(ValueError):
            resolve_shard_workers(0)

    def test_sweep_bit_identical_across_shard_counts(self):
        unsharded = run_sweep(self._open_sweep(), EngineOptions(workers=1))
        sharded = run_sweep(
            self._open_sweep(), EngineOptions(workers=1, shard_workers=2)
        )
        assert self._open_fingerprint(sharded) == self._open_fingerprint(unsharded)
        assert unsharded.stats["shard_workers"] == 1
        assert sharded.stats["shard_workers"] == 2

    def test_cache_key_excludes_shard_count(self, tmp_path, monkeypatch):
        """A cache warmed unsharded must fully serve a sharded rerun."""
        spec = self._open_sweep()
        seed = spawn_seed(spec.root_seed, spec.points[0].group())
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        key_sharded = spec.points[0].cache_key(seed)
        monkeypatch.delenv("REPRO_SHARD_WORKERS")
        assert spec.points[0].cache_key(seed) == key_sharded

        warm = run_sweep(spec, EngineOptions(workers=1, cache_dir=str(tmp_path)))
        rerun = run_sweep(
            spec,
            EngineOptions(workers=1, cache_dir=str(tmp_path), shard_workers=2),
        )
        assert warm.stats["cache_misses"] == 1
        assert rerun.stats["cache_hits"] == 1
        assert self._open_fingerprint(rerun) == self._open_fingerprint(warm)

    def test_env_var_restored_after_sweep(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "7")
        run_sweep(self._open_sweep(), EngineOptions(workers=1, shard_workers=2))
        assert os.environ["REPRO_SHARD_WORKERS"] == "7"
        monkeypatch.delenv("REPRO_SHARD_WORKERS")
        run_sweep(self._open_sweep(), EngineOptions(workers=1, shard_workers=2))
        assert "REPRO_SHARD_WORKERS" not in os.environ
