"""Smoke + shape tests for every experiment driver, at small scale.

Full-scale shape assertions live in benchmarks/ (they need the paper-scale
workload); here each driver must run, produce a well-formed table, and
satisfy the cheap structural checks.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentSettings,
    ablation,
    extreme_case,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    sensitivity,
    table1,
    tech_trends,
)


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(scale="small", num_samples=25)


class TestTable1:
    def test_all_rows_present(self):
        t = table1()
        assert len(t.rows) == 11

    def test_derived_quantities_within_10pct(self):
        t = table1()
        assert t.data["worst_derived_error"] < 0.10


class TestFigure5:
    def test_shape(self, settings):
        t = figure5(settings, m_values=(1, 2, 4), alphas=(0.3,))
        assert t.column("m") == [1, 2, 4]
        series = t.data["series"][0.3]
        assert len(series) == 3
        # the paper's m=1 -> m=2 jump
        assert series[1] > series[0]


class TestFigure6:
    def test_parallel_batch_wins_at_all_alphas(self, settings):
        # 12% tolerance: at high alpha the two skew-friendly schemes converge
        # (at alpha=1.0 parallel_batch and object_probability are a statistical
        # tie at this scale) and 25-sample small-scale runs are noisy; the
        # strict full-scale assertion lives in benchmarks/bench_fig6.py.
        t = figure6(settings, alphas=(0.0, 0.3, 1.0))
        series = t.data["series"]
        for i in range(3):
            pb = series["parallel_batch"][i]
            assert pb >= 0.88 * series["object_probability"][i]
            assert pb >= 0.88 * series["cluster_probability"][i]


class TestFigure7:
    def test_bandwidth_grows_with_request_size(self, settings):
        t = figure7(settings, size_scales=(0.5, 1.0, 1.5))
        pb = t.data["series"]["parallel_batch"]
        assert pb[-1] > pb[0]

    def test_request_sizes_reported_in_gb(self, settings):
        t = figure7(settings, size_scales=(0.5, 1.0))
        sizes = t.data["request_sizes_gb"]
        assert sizes[1] == pytest.approx(2 * sizes[0], rel=1e-6)


class TestFigure8:
    def test_parallel_batch_scales_with_libraries(self, settings):
        t = figure8(settings, library_counts=(1, 3))
        pb = t.data["series"]["parallel_batch"]
        assert pb[1] > pb[0]


class TestFigure9:
    def test_components_sum_to_response(self, settings):
        t = figure9(settings)
        for comp in t.data["components"].values():
            total = comp["switch"] + comp["seek"] + comp["transfer"]
            assert total == pytest.approx(comp["response"], rel=1e-6)

    def test_object_probability_switch_time_worst(self, settings):
        t = figure9(settings)
        c = t.data["components"]
        assert c["object_probability"]["switch"] > c["parallel_batch"]["switch"]
        assert c["object_probability"]["switch"] > c["cluster_probability"]["switch"]

    def test_object_probability_transfer_best(self, settings):
        t = figure9(settings)
        c = t.data["components"]
        assert c["object_probability"]["transfer"] < c["cluster_probability"]["transfer"]


class TestExtremeCase:
    def test_no_switches_anywhere(self, settings):
        t = extreme_case(settings)
        for stats in t.data["stats"].values():
            assert stats["switches"] == pytest.approx(0.0)
            assert abs(stats["switch"]) < 1.0

    def test_object_probability_lowest_response(self, settings):
        t = extreme_case(settings)
        stats = t.data["stats"]
        op = stats["object_probability"]["response"]
        assert op <= stats["parallel_batch"]["response"]
        assert op <= stats["cluster_probability"]["response"]

    def test_parallel_batch_less_transfer_bound_than_cluster(self, settings):
        t = extreme_case(settings)
        stats = t.data["stats"]
        assert (
            stats["parallel_batch"]["transfer_fraction"]
            < stats["cluster_probability"]["transfer_fraction"]
        )


class TestTechTrends:
    def test_faster_drives_raise_bandwidth(self, settings):
        t = tech_trends(settings, rate_factors=(1.0, 4.0), capacity_factors=(1.0,))
        pb = t.data["series"]["parallel_batch"]
        assert pb[1] > pb[0]


class TestSensitivity:
    def test_parallel_batch_wins_every_variation(self, settings):
        t = sensitivity(settings)
        assert set(t.data["winners"]) == {"parallel_batch"}


class TestAblation:
    def test_no_variant_is_catastrophically_better(self, settings):
        """At small scale individual ablations can be noisy; full-scale
        assertions live in benchmarks/bench_ablation.py.  Here: no ablated
        variant may beat the full scheme by more than 25%, and at least two
        must be strictly worse."""
        t = ablation(settings)
        bws = t.data["bandwidths"]
        full = bws["full scheme"]
        worse = 0
        for label, bw in bws.items():
            assert bw <= full * 1.25, f"{label} vastly beats the full scheme"
            if label != "full scheme" and bw < full:
                worse += 1
        assert worse >= 2

    def test_has_one_row_per_variant(self, settings):
        t = ablation(settings)
        assert len(t.rows) == 7


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "extreme", "tech", "sensitivity", "ablation",
            "incremental", "queueing", "disk", "striping", "robots", "degraded", "seek_model",
            "open_system", "availability", "seekplan", "redundancy",
            "repair",
        }

    def test_tables_format_without_error(self, settings):
        out = figure6(settings, alphas=(0.3,)).format()
        assert "F6" in out
