"""Tests for experiment settings and the comparison runner."""

import pytest

from repro.experiments import (
    ExperimentSettings,
    default_schemes,
    default_settings,
    paper_workload,
    run_comparison,
)


class TestSettings:
    def test_paper_scale_defaults(self):
        s = ExperimentSettings()
        assert s.workload_params.num_objects == 30_000
        assert s.samples == 200
        assert s.spec().library.tape.capacity_mb == 400_000

    def test_small_scale_shrinks_everything(self):
        s = ExperimentSettings(scale="small")
        assert s.workload_params.num_objects == 2500
        assert s.samples <= 60
        assert s.spec().library.tape.capacity_mb == pytest.approx(40_000)

    def test_small_scale_preserves_capacity_pressure(self):
        """Data-to-mounted-capacity ratio stays in the paper's regime."""
        s = ExperimentSettings(scale="small")
        workload = paper_workload(s)
        spec = s.spec()
        mounted = spec.total_drives * spec.library.tape.capacity_mb
        ratio = workload.total_size_mb / mounted
        assert 3 <= ratio <= 12  # paper: 53.4 TB / 9.6 TB ~ 5.6

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSettings(scale="giant").workload_params

    def test_spec_with_library_override(self):
        assert ExperimentSettings().spec(num_libraries=5).num_libraries == 5

    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        monkeypatch.setenv("REPRO_SAMPLES", "17")
        s = default_settings()
        assert s.scale == "small"
        assert s.num_samples == 17

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert default_settings(scale="paper").scale == "paper"

    def test_figure8_object_count_reduced(self):
        s = ExperimentSettings()
        assert s.figure8_num_objects == 12_000


class TestRunner:
    def test_default_schemes_are_the_papers_three(self):
        names = {s.name for s in default_schemes()}
        assert names == {"parallel_batch", "object_probability", "cluster_probability"}

    def test_run_comparison_same_sample_stream(self):
        s = ExperimentSettings(scale="small", num_samples=10)
        workload = paper_workload(s)
        results = run_comparison(workload, s.spec(), default_schemes(), 10, seed=3)
        assert set(results) == {s.name for s in default_schemes()}
        ids = {
            name: [m.request_id for m in r.samples] for name, r in results.items()
        }
        # identical sampled request sequence for every scheme
        assert len({tuple(v) for v in ids.values()}) == 1

    def test_paper_workload_alpha_override(self):
        s = ExperimentSettings(scale="small")
        flat = paper_workload(s, alpha=0.0)
        p = flat.requests.probabilities
        assert max(p) == pytest.approx(min(p))
