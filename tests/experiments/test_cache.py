"""Unit tests for the content-addressed sweep result cache."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.experiments.cache import (
    MISS,
    ResultCache,
    canonical_json,
    canonicalize,
    content_key,
    default_cache_dir,
)


@dataclasses.dataclass(frozen=True)
class Inner:
    x: int
    y: float


@dataclasses.dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    values: tuple


class TestCanonicalize:
    def test_dataclasses_are_tagged_with_class_name(self):
        out = canonicalize(Inner(1, 2.5))
        assert out == {"__dataclass__": "Inner", "x": 1, "y": 2.5}

    def test_nested_dataclasses_and_tuples(self):
        out = canonicalize(Outer("a", Inner(1, 2.0), (3, 4)))
        assert out["inner"] == {"__dataclass__": "Inner", "x": 1, "y": 2.0}
        assert out["values"] == [3, 4]

    def test_numpy_scalars_reduce_to_python(self):
        assert canonicalize(np.int64(7)) == 7
        assert canonicalize(np.float64(0.5)) == 0.5

    def test_unserializable_objects_raise(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_json_is_order_independent_for_dicts(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_float_repr_roundtrips(self):
        # json.dumps emits repr-round-trippable floats, so even adjacent
        # representable floats key differently.
        import math

        assert canonical_json(0.1) != canonical_json(math.nextafter(0.1, 1.0))


class TestContentKey:
    def test_equal_content_equal_key(self):
        assert content_key({"a": 1}) == content_key({"a": 1})

    def test_different_content_different_key(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_dataclass_type_distinguishes(self):
        @dataclasses.dataclass(frozen=True)
        class Other:
            x: int
            y: float

        assert content_key(Inner(1, 2.0)) != content_key(Other(1, 2.0))

    def test_salt_changes_key(self):
        assert content_key({"a": 1}) != content_key({"a": 1}, salt="sweep-v999")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"point": 1})
        assert key not in cache
        cache.put(key, {"bandwidth": 42.0})
        assert key in cache
        assert cache.get(key) == {"bandwidth": 42.0}
        assert cache.hits == 1

    def test_missing_key_is_miss_sentinel(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is MISS
        assert cache.misses == 1

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("none-payload")
        cache.put(key, None)
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("corrupt")
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is MISS

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(content_key(i), i)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(content_key("x"), "payload")
        assert not list(tmp_path.rglob("*.tmp"))

    def test_entries_shard_into_two_hex_dirs(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("shard")
        cache.put(key, 1)
        assert cache._path(key).parent.name == key[:2]

    def test_payloads_use_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("pickle")
        cache.put(key, {"a": (1, 2)})
        with cache._path(key).open("rb") as fh:
            assert pickle.load(fh) == {"a": (1, 2)}


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-tape" / "sweeps"
