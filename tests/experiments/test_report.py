"""Tests for ExperimentTable formatting."""

import pytest

from repro.experiments import ExperimentTable


@pytest.fixture
def table():
    t = ExperimentTable("T9", "demo table", ["x", "y"])
    t.add_row(1, 10.5)
    t.add_row(2, 2000.123)
    return t


def test_add_row_validates_width(table):
    with pytest.raises(ValueError):
        table.add_row(1)


def test_column_access(table):
    assert table.column("x") == [1, 2]
    with pytest.raises(ValueError):
        table.column("z")


def test_format_contains_everything(table):
    table.notes.append("hello note")
    out = table.format()
    assert "T9: demo table" in out
    assert "x" in out and "y" in out
    assert "10.5" in out
    assert "2,000" in out
    assert "note: hello note" in out


def test_str_same_as_format(table):
    assert str(table) == table.format()


def test_empty_table_formats():
    t = ExperimentTable("T0", "empty", ["a"])
    assert "T0" in t.format()


def test_float_formatting_rules():
    t = ExperimentTable("T1", "t", ["v"])
    t.add_row(0.0)
    t.add_row(0.1234567)
    t.add_row(42.77)
    t.add_row(123456.0)
    lines = t.format().splitlines()
    assert "0.123" in lines[5]
    assert "42.8" in lines[6]
    assert "123,456" in lines[7]


def test_to_csv_round_trips(table):
    import csv
    import io

    rows = list(csv.reader(io.StringIO(table.to_csv())))
    assert rows[0] == ["x", "y"]
    assert rows[1] == ["1", "10.5"]
    assert len(rows) == 3
