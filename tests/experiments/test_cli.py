"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_ids_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_run_scheme_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "nope"])


class TestCommands:
    def test_schemes_lists_all_three(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("parallel_batch", "object_probability", "cluster_probability"):
            assert name in out

    def test_workload_stats(self, capsys):
        assert main(["workload", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "total size" in out
        assert "avg request size" in out

    def test_workload_dump(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["workload", "--scale", "small", "--out", str(path)]) == 0
        assert path.exists()
        from repro.workload import load_workload

        assert load_workload(path).num_objects == 2500

    def test_run_prints_metrics(self, capsys):
        rc = main(
            ["run", "--scheme", "object_probability", "--scale", "small",
             "--samples", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg bandwidth" in out
        assert "avg response" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out
        assert "400" in out

    def test_experiment_small_scale(self, capsys):
        assert main(["experiment", "fig9", "--scale", "small", "--num-samples", "10"]) == 0
        out = capsys.readouterr().out
        assert "F9" in out
        assert "parallel batch" in out

    def test_compare_command(self, capsys):
        rc = main(
            ["compare", "parallel_batch", "cluster_probability",
             "--scale", "small", "--samples", "10"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "response_s" in out
        assert "paired samples" in out

    def test_experiment_chart_flag(self, capsys):
        rc = main(
            ["experiment", "fig9", "--scale", "small", "--num-samples", "8", "--chart"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "a: switch" in out  # chart legend rendered

    def test_table1_chart_uses_numeric_columns(self, capsys):
        rc = main(["experiment", "table1", "--chart"])
        assert rc == 0
        out = capsys.readouterr().out
        # value/paper are numeric columns; the textual "kind" is skipped
        assert "a: value" in out
        assert "kind" not in out.splitlines()[-1]

    def test_experiment_csv_flag(self, tmp_path, capsys):
        out_path = tmp_path / "t1.csv"
        rc = main(["experiment", "table1", "--csv", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        assert "parameter" in out_path.read_text().splitlines()[0]

    def test_reproduce_command(self, tmp_path, capsys):
        out = tmp_path / "results"
        rc = main(
            ["reproduce", "--scale", "small", "--num-samples", "8",
             "--only", "table1", "fig9", "--out", str(out)]
        )
        assert rc == 0
        assert (out / "INDEX.md").exists()
        assert (out / "table1.txt").exists()
        assert (out / "fig9.csv").exists()
        index = (out / "INDEX.md").read_text()
        assert "T1" in index and "F9" in index

    def test_trace_command_exports_and_validates(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        out = tmp_path / "telemetry"
        rc = main(
            ["trace", "--requests", "20", "--policy", "concurrent",
             "--scale", "small", "--out-dir", str(out), "--validate"]
        )
        assert rc == 0
        assert (out / "trace.json").exists()
        assert (out / "metrics.jsonl").exists()
        stdout = capsys.readouterr().out
        assert "Stage attribution" in stdout
        assert "trace validation OK" in stdout
        assert "sojourn" in stdout  # at least one flame rendered

    def test_trace_command_refuses_when_tracing_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        rc = main(
            ["trace", "--requests", "5", "--scale", "small",
             "--out-dir", str(tmp_path / "t")]
        )
        assert rc == 2


class TestFaultCommands:
    def test_open_fail_flag(self, capsys):
        rc = main(
            ["open", "--scale", "small", "--arrivals", "10",
             "--fail", "L0.D0=1800", "--fail", "L0.D1=3600"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "aborted:" in out
        assert "availability:" in out

    def test_open_fail_rejects_bad_format(self):
        with pytest.raises(SystemExit, match="DRIVE=TIME"):
            main(["open", "--scale", "small", "--fail", "L0.D0"])

    def test_open_fail_rejects_bad_number(self):
        with pytest.raises(SystemExit, match="must be a number"):
            main(["open", "--scale", "small", "--fail", "L0.D0=soon"])

    def test_open_fail_rejects_unknown_drive(self, capsys):
        # Unknown ids are a usage error: exit 2 with the known-id list,
        # before any simulation starts (ISSUE 9 satellite).
        with pytest.raises(SystemExit) as exc:
            main(["open", "--scale", "small", "--fail", "L9.D9=10"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown drive" in err
        assert "L0.D0" in err  # the known-id list is printed

    def test_fail_tape_rejects_unknown_tape(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--scale", "small", "--fail-tape", "L9.T99=10"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown tape" in err
        assert "L0.T0" in err

    def test_open_tape_loss_prints_repair_summary(self, capsys):
        rc = main(
            ["open", "--scale", "small", "--arrivals", "10",
             "--redundancy", "r=2", "--fail-tape", "L0.T1=600",
             "--repair-policy", "fair-share"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tape losses:" in out
        assert "members rebuilt:" in out
        assert "objects lost:" in out

    def test_chaos_tape_loss_with_repair_policy(self, capsys):
        rc = main(
            ["chaos", "--scale", "small", "--arrivals", "10",
             "--mtbf", "100.0", "--mttr", "0.1",
             "--redundancy", "r=2", "--fail-tape", "L0.T1=600",
             "--repair-policy", "repair-first",
             "--read-selection", "cheapest"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "repair policy:" in out
        assert "repair-first" in out
        assert "durability:" in out

    def test_chaos_prints_fault_summary(self, capsys):
        rc = main(
            ["chaos", "--scale", "small", "--arrivals", "15",
             "--mtbf", "0.5", "--mttr", "0.1", "--seed", "7"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "availability:" in out
        assert "drive failures:" in out
        assert "drive repairs:" in out
        assert "mean sojourn:" in out

    def test_chaos_with_transients_and_export(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        out_dir = tmp_path / "chaos"
        rc = main(
            ["chaos", "--scale", "small", "--arrivals", "10",
             "--mtbf", "100.0", "--mttr", "0.1",
             "--transient-prob", "0.2", "--retries", "3",
             "--out-dir", str(out_dir)]
        )
        assert rc == 0
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "metrics.jsonl").exists()
        out = capsys.readouterr().out
        assert "transient errors:" in out

    def test_chaos_is_deterministic(self, capsys):
        argv = ["chaos", "--scale", "small", "--arrivals", "12",
                "--mtbf", "0.5", "--mttr", "0.1", "--seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_chaos_weibull_shape(self, capsys):
        rc = main(
            ["chaos", "--scale", "small", "--arrivals", "10",
             "--mtbf", "0.5", "--mttr", "0.1",
             "--distribution", "weibull", "--shape", "1.5"]
        )
        assert rc == 0
        assert "weibull" in capsys.readouterr().out


class TestSeekPlannerFlag:
    """Registry lint: every registered planner round-trips through the CLI."""

    COMMANDS = (["open"], ["profile"], ["sweep", "seekplan"])

    def test_every_registered_name_parses_on_every_command(self):
        from repro.sim import available_seek_planners

        parser = build_parser()
        for base in self.COMMANDS:
            for name in available_seek_planners():
                args = parser.parse_args(base + ["--seek-planner", name])
                assert args.seek_planner == name

    def test_flag_choices_match_the_registry_exactly(self):
        import argparse

        from repro.sim import available_seek_planners

        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
        )
        for base in self.COMMANDS:
            command = sub.choices[base[0]]
            action = next(
                a for a in command._actions if a.dest == "seek_planner"
            )
            assert set(action.choices) == set(available_seek_planners())

    def test_unknown_planner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["open", "--seek-planner", "zigzag"])

    def test_sweep_settings_carry_the_planner(self):
        from repro.cli import _settings

        args = build_parser().parse_args(
            ["sweep", "seekplan", "--scale", "small", "--seek-planner", "exact"]
        )
        assert _settings(args).seek_planner == "exact"

    def test_open_reports_the_planner(self, capsys):
        assert (
            main(
                [
                    "open",
                    "--scale",
                    "small",
                    "--arrivals",
                    "3",
                    "--seek-planner",
                    "exact",
                ]
            )
            == 0
        )
        assert "seek planner:      exact" in capsys.readouterr().out


class TestTelemetryCommands:
    """The fleet pipeline end to end through the CLI: sweep artifacts, the
    report/metrics commands, SLO exit codes, and the logging flags."""

    SWEEP = ["sweep", "fig6", "--scale", "small", "--num-samples", "5",
             "--no-cache", "--workers", "1"]

    def test_sweep_writes_fleet_artifacts(self, tmp_path, capsys):
        fleet_path = tmp_path / "fleet.jsonl"
        html_path = tmp_path / "sweep.html"
        rc = main(self.SWEEP + [
            "--metrics-out", str(fleet_path),
            "--report", str(html_path),
            "--slo", "aborted_requests == 0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "1/1 objectives met" in out
        assert fleet_path.exists()
        doc = html_path.read_text()
        assert doc.lstrip().startswith("<!DOCTYPE html>")
        assert "Service-level objectives" in doc

        from repro.obs import read_fleet_jsonl

        fleet = read_fleet_jsonl(fleet_path)
        assert fleet.counter("requests.completed") > 0
        assert "latency.sojourn_s" in fleet.digests

    def test_sweep_slo_failure_sets_exit_code(self, capsys):
        rc = main(self.SWEEP + ["--slo", "p99_sojourn <= 0.001"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_report_rebuilds_from_fleet_jsonl(self, tmp_path, capsys):
        fleet_path = tmp_path / "fleet.jsonl"
        assert main(self.SWEEP + ["--metrics-out", str(fleet_path)]) == 0
        capsys.readouterr()
        html_path = tmp_path / "report.html"
        rc = main(["report", str(fleet_path), "--out", str(html_path),
                   "--slo", "aborted_requests == 0"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
        assert "<!DOCTYPE html>" in html_path.read_text()

    def test_report_from_chaos_metrics_jsonl(self, tmp_path, capsys):
        out_dir = tmp_path / "telem"
        assert main(
            ["chaos", "--scale", "small", "--arrivals", "8",
             "--mtbf", "0.5", "--mttr", "0.1", "--seed", "3",
             "--out-dir", str(out_dir)]
        ) == 0
        capsys.readouterr()
        html_path = tmp_path / "chaos.html"
        rc = main(["report", str(out_dir / "metrics.jsonl"),
                   "--out", str(html_path), "--slo", "availability <= 1"])
        assert rc == 0
        assert html_path.exists()

    def test_report_missing_file_is_an_error(self, capsys):
        assert main(["report", "no/such/file.jsonl"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_chaos_slo_verdicts_and_exit_code(self, capsys):
        argv = ["chaos", "--scale", "small", "--arrivals", "8",
                "--mtbf", "0.5", "--mttr", "0.1", "--seed", "3"]
        # An impossible objective fails the run...
        assert main(argv + ["--slo", "p99_sojourn <= 0.001"]) == 1
        assert "FAIL" in capsys.readouterr().out
        # ...a trivially true one passes it.
        assert main(argv + ["--slo", "availability <= 1"]) == 0
        assert "1/1 objectives met" in capsys.readouterr().out

    def test_metrics_pretty_prints_fleet_jsonl(self, tmp_path, capsys):
        fleet_path = tmp_path / "fleet.jsonl"
        assert main(self.SWEEP + ["--metrics-out", str(fleet_path)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(fleet_path)]) == 0
        out = capsys.readouterr().out
        assert "[fleet]" in out
        assert "[snapshot]" in out

    def test_quiet_and_default_logging(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        assert main(["experiment", "fig9", "--scale", "small",
                     "--num-samples", "8", "--csv", str(csv)]) == 0
        err = capsys.readouterr().err
        assert "CSV written" in err  # status goes to stderr, not stdout
        assert main(["-q", "experiment", "fig9", "--scale", "small",
                     "--num-samples", "8", "--csv", str(csv)]) == 0
        assert "CSV written" not in capsys.readouterr().err


class TestShardWorkersFlag:
    """ISSUE 10 satellite: --shard-workers validation in the --fail-tape
    style — usage errors exit 2 on stderr before any simulation."""

    def test_open_rejects_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["open", "--scale", "small", "--shard-workers", "0"])
        assert exc.value.code == 2
        assert "--shard-workers must be >= 1" in capsys.readouterr().err

    def test_chaos_rejects_negative(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--scale", "small", "--shard-workers", "-3"])
        assert exc.value.code == 2
        assert "--shard-workers must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "fig5", "--scale", "small", "--no-cache",
                  "--shard-workers", "0"])
        assert exc.value.code == 2
        assert "--shard-workers must be >= 1" in capsys.readouterr().err

    def test_bad_env_var_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "many")
        with pytest.raises(SystemExit) as exc:
            main(["open", "--scale", "small", "--arrivals", "5"])
        assert exc.value.code == 2
        assert "REPRO_SHARD_WORKERS must be an integer" in capsys.readouterr().err

    def test_more_shards_than_libraries_warns_but_runs(self, capsys):
        rc = main(["open", "--scale", "small", "--arrivals", "5",
                   "--shard-workers", "99"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "exceeds the 3 configured libraries" in captured.err
        assert "mean sojourn:" in captured.out

    def test_open_sharded_matches_unsharded(self, capsys):
        assert main(["open", "--scale", "small", "--arrivals", "10"]) == 0
        baseline = capsys.readouterr().out
        assert main(["open", "--scale", "small", "--arrivals", "10",
                     "--shard-workers", "2"]) == 0
        assert capsys.readouterr().out == baseline

    def test_open_calendar_scheduler_matches_heapq(self, capsys):
        assert main(["open", "--scale", "small", "--arrivals", "10",
                     "--scheduler", "heapq"]) == 0
        baseline = capsys.readouterr().out
        assert main(["open", "--scale", "small", "--arrivals", "10",
                     "--scheduler", "calendar"]) == 0
        assert capsys.readouterr().out == baseline

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["open", "--scale", "small", "--scheduler", "lifo"])
