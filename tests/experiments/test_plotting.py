"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments import ExperimentTable, ascii_chart, chart_table


class TestAsciiChart:
    def test_contains_glyphs_axis_and_legend(self):
        chart = ascii_chart([1, 2, 3], [[10.0, 20.0, 30.0]], ["series one"])
        assert "a" in chart
        assert "a: series one" in chart
        assert "+" in chart and "|" in chart

    def test_two_series_two_glyphs(self):
        chart = ascii_chart(
            [1, 2], [[1.0, 2.0], [5.0, 6.0]], ["low", "high"]
        )
        assert "a: low" in chart
        assert "b: high" in chart

    def test_extremes_hit_top_and_bottom(self):
        chart = ascii_chart([1, 2], [[0.0, 100.0]], ["s"], height=10)
        rows = [ln for ln in chart.splitlines() if "|" in ln]
        assert "a" in rows[0]    # max on the top plot row
        assert "a" in rows[-1]   # min on the bottom plot row

    def test_collision_prints_star(self):
        chart = ascii_chart([1], [[5.0], [5.0]], ["x", "y"])
        assert "*" in chart

    def test_flat_series_renders(self):
        chart = ascii_chart([1, 2, 3], [[7.0, 7.0, 7.0]], ["flat"])
        assert chart.count("a") >= 3 + 1  # 3 points + legend

    def test_monotone_series_is_monotone_on_grid(self):
        chart = ascii_chart([1, 2, 3, 4], [[1.0, 2.0, 3.0, 4.0]], ["up"], height=12)
        rows = [ln.split("|", 1)[1] for ln in chart.splitlines() if "|" in ln]
        cols = [row.index("a") for row in rows if "a" in row]
        # scanning top to bottom, the x position must strictly decrease
        assert cols == sorted(cols, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1], [], [])
        with pytest.raises(ValueError):
            ascii_chart([1, 2], [[1.0]], ["s"])
        with pytest.raises(ValueError):
            ascii_chart([1], [[1.0]], ["s"], height=2)


class TestChartTable:
    def test_numeric_table_charts(self):
        t = ExperimentTable("F0", "demo", ["x", "a", "b"])
        t.add_row(1, 10.0, 20.0)
        t.add_row(2, 15.0, 25.0)
        chart = chart_table(t)
        assert chart is not None
        assert "a: a" in chart

    def test_non_numeric_columns_skipped(self):
        t = ExperimentTable("F0", "demo", ["x", "label", "v"])
        t.add_row(1, "foo", 10.0)
        t.add_row(2, "bar", 20.0)
        chart = chart_table(t)
        assert chart is not None
        assert "a: v" in chart
        assert "label" not in chart.splitlines()[-1]

    def test_all_text_table_returns_none(self):
        t = ExperimentTable("T1", "specs", ["param", "value"])
        t.add_row("x", "y")
        t.add_row("z", "w")
        assert chart_table(t) is None

    def test_single_row_returns_none(self):
        t = ExperimentTable("F0", "demo", ["x", "v"])
        t.add_row(1, 10.0)
        assert chart_table(t) is None
