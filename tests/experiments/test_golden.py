"""Golden regression snapshots for small-scale figure sweeps.

These pin the *numbers* (not just the shapes) of reduced F5/F6/F8 runs.
The engine guarantees results are a pure function of (sweep spec, root
seed), so any diff here is a real behavior change: either a bug, or an
intended semantic change — in which case regenerate with

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py --update-golden

review the diff, bump ``repro.experiments.cache.CACHE_SALT``, and commit.
Values are stored via JSON (repr-round-trippable floats), so comparisons
can be essentially exact; the loose-ish tolerance below only absorbs
cross-platform libm differences in the simulator's transcendentals.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentSettings,
    figure5,
    figure6,
    figure8,
    seek_planning,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Keep in sync with the figure drivers' small-scale test settings.
SETTINGS = ExperimentSettings(scale="small", num_samples=25)


def check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {path.name} updated")
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path}; generate it with --update-golden"
        )
    expected = json.loads(path.read_text())
    assert payload.keys() == expected.keys()
    for key, exp in expected.items():
        got = payload[key]
        if isinstance(exp, dict):
            assert got.keys() == exp.keys(), key
            for series, values in exp.items():
                assert got[series] == pytest.approx(values, rel=1e-9), (key, series)
        else:
            assert got == pytest.approx(exp, rel=1e-9), key


def test_figure5_small_scale_golden(update_golden):
    t = figure5(SETTINGS, m_values=(1, 2, 4, 6), alphas=(0.0, 0.3, 1.0))
    payload = {
        "m_values": t.data["m_values"],
        "series": {f"alpha={a}": v for a, v in t.data["series"].items()},
    }
    check_golden("fig5_small", payload, update_golden)


def test_figure6_small_scale_golden(update_golden):
    t = figure6(SETTINGS, alphas=(0.0, 0.3, 1.0))
    payload = {"alphas": t.data["alphas"], "series": t.data["series"]}
    check_golden("fig6_small", payload, update_golden)


def test_figure8_small_scale_golden(update_golden):
    t = figure8(SETTINGS, library_counts=(1, 2, 3))
    payload = {
        "library_counts": t.data["library_counts"],
        "series": t.data["series"],
    }
    check_golden("fig8_small", payload, update_golden)


def test_seek_planning_small_scale_golden(update_golden):
    t = seek_planning(SETTINGS, num_arrivals=20)
    payload = {
        "batch_scales": t.data["batch_scales"],
        "series": t.data["series"],
        "seek_series": t.data["seek_series"],
        "exact_gain_pct": t.data["exact_gain_pct"],
    }
    check_golden("seekplan_small", payload, update_golden)
    # The acceptance property behind E4: on at least one multi-object
    # batch cell the exact LTSP plan's mean sojourn is <= greedy-sweep's.
    assert any(gain >= 0.0 for gain in t.data["exact_gain_pct"][1:])


def test_redundancy_small_scale_golden(update_golden):
    from repro.experiments import redundancy

    t = redundancy(SETTINGS, num_arrivals=20)
    payload = {
        "levels": t.data["levels"],
        "overhead": t.data["overhead"],
        "series": t.data["series"],
        "request_availability": t.data["request_availability"],
        "durability": t.data["durability"],
        "aborted": t.data["aborted"],
        "fallbacks": t.data["fallbacks"],
    }
    check_golden("a12_small", payload, update_golden)
    # The acceptance property behind A12: under a fixed DriveFaultProcess
    # spec, request availability never decreases with redundancy level,
    # and the analytic durability strictly increases.
    avail = t.data["request_availability"]
    assert all(b >= a for a, b in zip(avail, avail[1:]))
    durability = t.data["durability"]
    assert all(b > a for a, b in zip(durability, durability[1:]))
