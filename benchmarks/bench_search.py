"""A7 — how near-optimal is the paper's heuristic?

The paper claims the optimal placement is NP-hard and settles for the
constructive heuristic of Sec. 5.  Local search over the analytic cost
model (the paper's own objective Σ P(R)·t(R)) measures the residual slack:
the improvement the search finds on each scheme's placement is an upper
bound on how much the heuristic left on the table under this move set.
"""

from repro.experiments import ExperimentTable, paper_workload
from repro.model import optimize_placement
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
)

ITERATIONS = 150


def test_search_residual_slack(run_once, settings):
    def experiment():
        workload = paper_workload(settings)
        spec = settings.spec()
        table = ExperimentTable(
            "A7",
            f"Local-search slack on each scheme's placement ({ITERATIONS} moves)",
            ["scheme", "objective before (s)", "objective after (s)", "improvement", "accepted moves"],
        )
        improvements = {}
        for scheme in (
            ParallelBatchPlacement(m=settings.m),
            ObjectProbabilityPlacement(),
            ClusterProbabilityPlacement(),
        ):
            placement = scheme.place(workload, spec)
            result = optimize_placement(
                placement, workload, spec, iterations=ITERATIONS, seed=1,
                sample_requests=60,
            )
            result.placement.validate(workload.catalog, spec)
            improvements[scheme.name] = result.improvement
            table.add_row(
                scheme.name,
                result.initial_objective_s,
                result.final_objective_s,
                f"{result.improvement:.1%}",
                result.moves_accepted,
            )
        table.data["improvements"] = improvements
        table.notes.append(
            "improvement = slack the constructive heuristic left under "
            "popularity-biased pull-to-majority moves (paper's objective)"
        )
        return table

    table = run_once(experiment)
    print()
    print(table.format())

    improvements = table.data["improvements"]
    # Search never worsens the objective.
    for name, imp in improvements.items():
        assert imp >= -1e-9, f"{name}: objective increased"
    # The paper's heuristic sits near a local optimum: the search recovers
    # only a few percent on parallel batch.
    assert improvements["parallel_batch"] < 0.08
