"""Redundant-dispatch overhead: the r=1 wrapper must cost ~nothing.

ISSUE 8 threads a redundancy check into the concurrent dispatcher's serve
path (`has_redundancy` gate before every request, group resolution and
choice-of-d selection behind it).  The layer is only free if the gate
vanishes for non-redundant layouts: this bench runs the same arrival
stream three ways —

* **baseline** — the bare base scheme: the serve path the seed shipped;
* **degenerate** — the same scheme wrapped in ``ReplicatedPlacement(r=1)``:
  an exact pass-through layout, so only the per-request gate remains and
  the DES stream must be bit-identical to the baseline;
* **redundant** — ``r=2``, recorded for the perf trajectory (not held to
  a bar: group resolution and choice-of-d do strictly more work).

The baseline-vs-degenerate wall-time delta is the dispatch gate's
overhead and is held to the ISSUE's <5 % acceptance bar.  Results land
in ``BENCH_redundancy.json`` at the repo root (uploaded as a CI
artifact).
"""

import json
from pathlib import Path
from time import perf_counter, process_time

from repro.experiments import paper_workload
from repro.placement import ParallelBatchPlacement
from repro.redundancy import ReplicatedPlacement
from repro.sim import SimulationSession

BENCH_REDUNDANCY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_redundancy.json"
)


def _one_run(workload, spec, settings, r, rate=8.0, num_arrivals=250):
    """(wall, cpu) seconds for one open-system stream (placement untimed).

    CPU time feeds the overhead *comparison* (far less noisy than wall on
    a shared runner — see ``benchmarks/conftest.py``); wall time is only
    reported.
    """
    scheme = ParallelBatchPlacement(m=settings.m)
    if r is not None:
        scheme = ReplicatedPlacement(base=scheme, r=r)
    session = SimulationSession(workload, spec, scheme=scheme)
    opensys = session.open(policy="concurrent")
    start = perf_counter()
    cpu_start = process_time()
    result = opensys.run(rate, num_arrivals=num_arrivals, seed=settings.eval_seed)
    return perf_counter() - start, process_time() - cpu_start, result


def test_degenerate_dispatch_overhead(settings):
    workload = paper_workload(settings)
    spec = settings.spec()

    # One untimed warm-up pair (allocator/caches), then interleaved
    # baseline/degenerate pairs.  Both runs do bit-identical work, so the
    # honest overhead estimate is the *median of paired per-round
    # differences*: scheduler blips hit one round's pair, not the median,
    # where a ratio-of-mins would flake on a single lucky baseline round.
    _one_run(workload, spec, settings, None)
    _one_run(workload, spec, settings, 1)
    diffs_pct = []
    baseline_s = degenerate_s = redundant_s = float("inf")
    baseline_wall = degenerate_wall = float("inf")
    baseline = degenerate = redundant = None
    for _ in range(9):
        wall, cpu, baseline = _one_run(workload, spec, settings, None)
        base_cpu = cpu
        baseline_s = min(baseline_s, cpu)
        baseline_wall = min(baseline_wall, wall)
        wall, cpu, degenerate = _one_run(workload, spec, settings, 1)
        degenerate_s = min(degenerate_s, cpu)
        degenerate_wall = min(degenerate_wall, wall)
        diffs_pct.append(100.0 * (cpu - base_cpu) / base_cpu)
    for _ in range(2):
        wall, cpu, redundant = _one_run(workload, spec, settings, 2)
        redundant_s = min(redundant_s, cpu)

    # The r=1 gate must not perturb the simulation: identical finish
    # times, and no redundancy instruments ever registered.
    assert [r.finish_s for r in degenerate.records] == [
        r.finish_s for r in baseline.records
    ]
    assert not any(
        name.startswith("redundancy.") for name in degenerate.registry.counters
    )

    # The r=2 run actually exercised the redundant serve path.
    counters = redundant.registry.counters
    assert counters["redundancy.requests"].value == len(redundant.records)
    assert redundant.aborted_requests == 0

    overhead_pct = sorted(diffs_pct)[len(diffs_pct) // 2]
    payload = {
        "scale": settings.scale,
        "num_arrivals": 250,
        "rate_per_hour": 8.0,
        "baseline_cpu_s": round(baseline_s, 4),
        "degenerate_r1_cpu_s": round(degenerate_s, 4),
        "baseline_wall_s": round(baseline_wall, 4),
        "degenerate_r1_wall_s": round(degenerate_wall, 4),
        "degenerate_overhead_pct": round(overhead_pct, 2),
        "redundant_r2": {
            "wall_s": round(redundant_s, 4),
            "fallbacks": counters["redundancy.fallbacks"].value,
            "mean_sojourn_s": round(redundant.mean_sojourn_s, 2),
        },
    }
    BENCH_REDUNDANCY_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nredundant-dispatch r=1 overhead: {overhead_pct:+.2f}% "
          f"({baseline_s:.3f}s -> {degenerate_s:.3f}s); r=2 run {redundant_s:.3f}s")

    # The ISSUE's acceptance bar: the r=1 dispatch gate costs <5 %.
    assert overhead_pct < 5.0
