"""A5 — striping: measuring the related-work claim the paper relies on.

Sec. 2: "striping on sequential-accessed tapes suffers from long
synchronization latencies … The striping system may perform worse than
non-striping system [9, 13, 19, 10].  Thus, in our proposed scheme, we do
not consider object striping."

We sweep the striping width and compare against the non-striped
object-probability layout (same rank-group structure, striping isolated)
and against parallel batch placement.
"""

from repro.experiments import striping

STRIPE_WIDTHS = (2, 4, 8)


def test_striping_tradeoff(run_once, settings):
    table = run_once(striping, settings, stripe_widths=STRIPE_WIDTHS)
    print()
    print(table.format())

    rows = table.data["rows"]
    base = rows["non-striped (object probability)"]
    # Striping always buys raw transfer time, more with width...
    transfers = [rows[f"striped, width {w}"]["transfer"] for w in STRIPE_WIDTHS]
    assert all(t < base["transfer"] for t in transfers)
    assert transfers == sorted(transfers, reverse=True)
    # ...while the switch cost grows with width and overtakes the
    # non-striped layout (the synchronization/switch penalty of [15]).
    switches = [rows[f"striped, width {w}"]["switches"] for w in STRIPE_WIDTHS]
    assert switches[-1] > switches[0]
    assert switches[-1] > base["switches"]
    # The related-work conclusion: "the optimal striping width depends on
    # the workload" (narrow striping may pay off) but wide striping is
    # net-negative, and no width approaches the proposed scheme.
    assert rows["striped, width 8"]["bandwidth"] < base["bandwidth"] * 1.02
    assert rows["striped, width 8"]["bandwidth"] < rows["striped, width 2"]["bandwidth"]
    for w in STRIPE_WIDTHS:
        assert rows[f"striped, width {w}"]["bandwidth"] < rows["parallel batch"]["bandwidth"]
