"""Micro-benchmarks of the library's own performance-critical components.

Not paper artifacts — these track the cost of the simulator substrate
itself (DES kernel throughput, placement algorithm runtime, request
simulation rate) so regressions in the reproduction tooling are visible.
"""

import numpy as np
import pytest

from repro.des import Environment, Resource
from repro.experiments import default_settings, paper_workload
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    cluster_objects,
)
from repro.sim import SimulationSession


@pytest.fixture(scope="module")
def workload():
    return paper_workload(default_settings())


@pytest.fixture(scope="module")
def spec():
    return default_settings().spec()


def test_des_kernel_event_throughput(benchmark):
    """Schedule-and-run 20k timeout events through the kernel."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(20_000):
                yield env.timeout(1)

        env.process(ticker())
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 20_000


def test_des_resource_contention_throughput(benchmark):
    """1 000 users through a capacity-2 resource."""

    def run():
        env = Environment()
        res = Resource(env, 2)
        done = []

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(1)
            done.append(env.now)

        for _ in range(1000):
            env.process(user())
        env.run()
        return len(done)

    assert benchmark(run) == 1000


@pytest.mark.parametrize(
    "scheme_cls",
    [ParallelBatchPlacement, ObjectProbabilityPlacement, ClusterProbabilityPlacement],
    ids=lambda c: c.name,
)
def test_placement_runtime(benchmark, workload, spec, scheme_cls):
    """Placing the full 30k-object workload."""
    scheme = scheme_cls()
    result = benchmark.pedantic(scheme.place, args=(workload, spec), rounds=3, iterations=1)
    assert result.objects_placed() == workload.num_objects


def test_clustering_runtime(benchmark, workload):
    clustering = benchmark.pedantic(
        cluster_objects, args=(workload,), kwargs={"detach_shared": True},
        rounds=3, iterations=1,
    )
    assert clustering.num_objects == workload.num_objects


def test_request_simulation_rate(benchmark, workload, spec):
    """Serving 50 sampled requests end to end (after placement)."""
    session = SimulationSession(workload, spec, scheme=ParallelBatchPlacement())

    def serve_batch():
        session.reset()
        rng = np.random.default_rng(0)
        total = 0.0
        for request in workload.requests.sample(rng, 50):
            total += session.serve(request).response_s
        return total

    total = benchmark.pedantic(serve_batch, rounds=3, iterations=1)
    assert total > 0
