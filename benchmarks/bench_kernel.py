"""DES kernel throughput: events/sec, tracing on/off, and the perf gate.

Measures the event-processing rate of one identical open-system arrival
stream under each scheduling policy, with tracing enabled and disabled, and
writes ``BENCH_kernel.json`` at the repo root.  At paper scale the measured
rates gate against the *seed* kernel (the pre-fast-path numbers frozen
below): serial-fcfs must hold a >= 1.5x speedup and concurrent >= 1.3x, and
the enabled-tracing overhead on the concurrent stream is checked against
its 5% target.

Timing protocol: each (policy, tracing) cell is the *minimum* of several
alternating rounds — single-shot wall readings on a shared runner swing by
tens of percent, and the first (cold) round systematically penalizes
whichever mode runs first.  Throughput (events/sec) is wall-based.

The *gated* enabled-tracing overhead is micro-costed, mirroring how
``bench_trace_overhead.py`` bounds the disabled path: each instrumentation
path (inline fast-lane append, ``record`` call, ``SpanContext``) is priced
per call with ``timeit`` and multiplied by how often the enabled run hit
it.  Same-mode CPU time on a shared runner swings by ~20% between adjacent
identical runs, so differencing two end-to-end timings cannot resolve a
5% effect; the per-call prices are stable to a few percent.  The noisy
end-to-end paired-CPU delta is still recorded (``..._e2e_pct``) as a
sanity corroboration.  Quick mode (``--quick`` / ``REPRO_BENCH_QUICK``)
runs one small-scale round per cell and downgrades every absolute gate to a
soft warning so a CI smoke job cannot flake on machine noise.
"""

import json
import warnings
from collections import Counter
from pathlib import Path
from statistics import median
from timeit import timeit

import pytest

from repro.des import Environment, Trace

BENCH_KERNEL_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Paper-scale events/sec of the seed kernel (``BENCH_opensystem.json``'s
#: ``open_system`` section as committed before the kernel fast path).
#: Deliberately frozen here: re-running the open-system bench overwrites
#: that file with post-optimization numbers, so the file itself cannot
#: serve as the regression baseline.
SEED_EVENTS_PER_S = {"serial-fcfs": 60326, "concurrent": 36174}

#: Minimum speedup over the seed kernel, per policy (the PR's perf gate).
SPEEDUP_FLOOR = {"serial-fcfs": 1.5, "concurrent": 1.3}

#: Enabled-tracing overhead target on the concurrent stream (percent), with
#: a generous hard ceiling above it so shared-runner noise warns, not fails.
ENABLED_OVERHEAD_TARGET_PCT = 5.0
ENABLED_OVERHEAD_CEILING_PCT = 12.0

#: Soft floor for quick (small-scale) smoke runs — generous on purpose.
QUICK_SOFT_FLOOR_EVENTS_PER_S = 5_000

#: Span names emitted through the engine's inline fast lane (id claim plus
#: one raw tuple append): the per-extent seek/transfer loop and the whole
#: switch tree (see ``sim/engine.py``).
GUARDED_SPANS = frozenset(
    {"seek", "transfer", "rewind", "unload", "robot_exchange", "robot_fetch", "load", "switch"}
)
#: Spans appended post-hoc through ``Trace.record``/``record_reserved``
#: (one plain function call per span).
RECORDED_SPANS = frozenset(
    {"robot_wait", "disk_wait", "dispatch_wait", "tape_job", "drive_failure"}
)


def _enabled_overhead_estimate(result, wall_off: float) -> float:
    """Micro-costed enabled-tracing overhead as a fraction of ``wall_off``.

    Prices each instrumentation path per call with ``timeit`` and charges
    it once per span the enabled run actually recorded.  Deterministic
    where an end-to-end on/off difference is not: adjacent identical runs
    on a shared runner differ by ~20% CPU, swamping a 5% effect.
    """
    trace = Trace(enabled=True)
    env = Environment()
    span_append = trace._spans.append

    def guarded() -> None:
        sid = trace._next_id
        trace._next_id = sid + 1
        started = env._now
        span_append((
            "seek", started, env._now,
            ("drive", "L0.D1", "object", 123), sid, 5, 7,
        ))

    def recorded() -> None:
        trace.record("tape_job", 0.0, 1.0, parent=3, request=7, drive="L0.D1")

    def spanned() -> None:
        with trace.span(env, "request", parent=3, request=7, policy="concurrent"):
            pass

    n = 20_000
    prices = {}
    for key, fn in (("guarded", guarded), ("recorded", recorded), ("spanned", spanned)):
        prices[key] = min(timeit(fn, number=n) for _ in range(3)) / n
        trace._spans.clear()
        trace._clean_upto = 0

    by_name = Counter(span.name for span in result.spans())
    counts = {
        "guarded": sum(c for name, c in by_name.items() if name in GUARDED_SPANS),
        "recorded": sum(c for name, c in by_name.items() if name in RECORDED_SPANS),
    }
    counts["spanned"] = sum(by_name.values()) - counts["guarded"] - counts["recorded"]
    est_s = sum(counts[key] * prices[key] for key in prices)
    return est_s / wall_off


def test_kernel_throughput_gate(settings, timed_open_run, quick, monkeypatch):
    rate = 8.0
    arrivals = 24 if quick else 60
    rounds = 1 if quick else 5

    def measure(policy):
        """Alternating on/off rounds: per-mode min wall + paired overhead.

        Throughput is each mode's minimum wall time.  The enabled-tracing
        overhead is the *median of per-round paired CPU deltas*: each round
        runs tracing on and off back-to-back, so frequency drift hits both
        runs of a pair about equally and cancels in the ratio — whereas
        differencing two independent per-mode minima lets one lucky round
        on either side swing the "overhead" by ±20 points.
        """
        on = off = None
        deltas = []
        for _ in range(rounds):
            monkeypatch.delenv("REPRO_TRACE", raising=False)
            r_on = timed_open_run(policy, rate, arrivals)
            on = r_on if on is None else on._replace(
                wall_s=min(on.wall_s, r_on.wall_s), cpu_s=min(on.cpu_s, r_on.cpu_s)
            )
            monkeypatch.setenv("REPRO_TRACE", "0")
            r_off = timed_open_run(policy, rate, arrivals)
            off = r_off if off is None else off._replace(
                wall_s=min(off.wall_s, r_off.wall_s), cpu_s=min(off.cpu_s, r_off.cpu_s)
            )
            deltas.append((r_on.cpu_s - r_off.cpu_s) / r_off.cpu_s)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        return on, off, median(deltas)

    payload = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "rounds_per_cell": rounds,
        "seed_baseline_events_per_s": SEED_EVENTS_PER_S,
        "speedup_floor": SPEEDUP_FLOOR,
        "enabled_overhead_target_pct": ENABLED_OVERHEAD_TARGET_PCT,
        "policies": {},
    }
    for policy in ("serial-fcfs", "concurrent"):
        on, off, e2e_overhead = measure(policy)

        # Tracing must not change the simulation itself.
        assert on.events == off.events
        assert on.spans > 0 and off.spans == 0

        overhead = _enabled_overhead_estimate(on.result, off.wall_s)

        payload["policies"][policy] = {
            "events_processed": on.events,
            "tracing_on": {
                "wall_s": round(on.wall_s, 4),
                "cpu_s": round(on.cpu_s, 4),
                "events_per_s": round(on.events / on.wall_s),
                "spans_recorded": on.spans,
            },
            "tracing_off": {
                "wall_s": round(off.wall_s, 4),
                "cpu_s": round(off.cpu_s, 4),
                "events_per_s": round(off.events / off.wall_s),
            },
            "enabled_overhead_pct": round(overhead * 100, 2),
            "enabled_overhead_e2e_pct": round(e2e_overhead * 100, 2),
            "speedup_vs_seed": (
                round(on.events / on.wall_s / SEED_EVENTS_PER_S[policy], 2)
                if settings.scale == "paper"
                else None
            ),
        }

    BENCH_KERNEL_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nwritten to {BENCH_KERNEL_PATH}")

    if settings.scale != "paper":
        # Quick/small-scale smoke: soft floor only — warn, never flake.
        for policy, entry in payload["policies"].items():
            rate_on = entry["tracing_on"]["events_per_s"]
            if rate_on < QUICK_SOFT_FLOOR_EVENTS_PER_S:
                warnings.warn(
                    f"{policy}: {rate_on:,} events/s is below the "
                    f"{QUICK_SOFT_FLOOR_EVENTS_PER_S:,} soft floor "
                    "(slow runner, or a real kernel regression?)",
                    stacklevel=1,
                )
        return

    for policy, floor in SPEEDUP_FLOOR.items():
        speedup = payload["policies"][policy]["speedup_vs_seed"]
        assert speedup >= floor, (
            f"{policy}: {speedup}x over the seed kernel "
            f"({payload['policies'][policy]['tracing_on']['events_per_s']:,} vs "
            f"{SEED_EVENTS_PER_S[policy]:,} events/s) is under the {floor}x gate"
        )

    overhead = payload["policies"]["concurrent"]["enabled_overhead_pct"]
    assert overhead < ENABLED_OVERHEAD_CEILING_PCT, (
        f"enabled tracing costs {overhead}% of the concurrent run "
        f"(hard ceiling {ENABLED_OVERHEAD_CEILING_PCT}%)"
    )
    if overhead > ENABLED_OVERHEAD_TARGET_PCT:
        warnings.warn(
            f"enabled-tracing overhead {overhead}% exceeds the "
            f"{ENABLED_OVERHEAD_TARGET_PCT}% target (within the "
            f"{ENABLED_OVERHEAD_CEILING_PCT}% ceiling)",
            stacklevel=1,
        )


#: Per-plan planning-price ceilings (microseconds) for the seek-planner
#: gate, by extent count.  Greedy guards the default hot path (``_serve_job``
#: plans once per tape visit, so its price rides every visit); exact's
#: ceiling only keeps the O(n^2) DP from quietly growing a cubic term.
#: Measured on the dev runner: greedy ~5/16/71 us, exact ~24/139/1471 us —
#: ceilings sit 4-10x above to absorb shared-runner noise.
GREEDY_PLAN_CEILING_US = {8: 60.0, 32: 160.0, 128: 700.0}
EXACT_PLAN_CEILING_US = {8: 600.0, 32: 3_000.0, 128: 15_000.0}


def _plan_prices(n_extents: int) -> dict:
    """Per-call planning price (seconds) of every registered planner on one
    random ``n_extents``-extent batch over an affine-startup tape spec."""
    import dataclasses
    import random

    from repro.hardware import SystemSpec
    from repro.sim import available_seek_planners, make_seek_planner
    from repro.sim.seekplan import ObjectExtent

    tape = dataclasses.replace(
        SystemSpec.table1().library.tape, locate_startup_s=4.0
    )
    rng = random.Random(20060814 + n_extents)
    extents = [
        ObjectExtent(object_id=i, start_mb=start / 100.0, size_mb=50.0)
        for i, start in enumerate(rng.sample(range(0, 190_000), n_extents))
    ]
    number = max(20, 2_000 // n_extents)
    prices = {}
    for name in available_seek_planners():
        planner = make_seek_planner(name)
        prices[name] = (
            min(
                timeit(lambda: planner.plan(extents, 500.0, tape), number=number)
                for _ in range(3)
            )
            / number
        )
    return prices


def test_seek_planner_gate(settings, timed_open_run, quick):
    """The planner registry stays off the default hot path.

    Three checks: (1) resolving no planner yields the shared greedy-sweep
    singleton, so the engine's per-visit planning cost is unchanged by the
    registry indirection; (2) per-plan micro prices — greedy under the
    hot-path ceiling, exact under its own (an O(n^2) sanity bound); (3) one
    end-to-end run per registered planner on the identical arrival stream,
    recorded to ``BENCH_kernel.json`` (read-modify-write: the throughput
    gate above overwrites the file, so this test must merge, not write).
    """
    from repro.sim import available_seek_planners, resolve_seek_planner

    default = resolve_seek_planner(None)
    assert default.name == "greedy-sweep"
    assert resolve_seek_planner(None) is default, (
        "resolve_seek_planner(None) must return a shared singleton — a "
        "fresh allocation per request would ride the admission path"
    )

    sizes = (8, 32) if quick else (8, 32, 128)
    prices = {n: _plan_prices(n) for n in sizes}

    rate, arrivals = 8.0, (24 if quick else 60)
    baseline = timed_open_run("serial-fcfs", rate, arrivals)
    runs = {}
    raw_sojourn = {}
    for name in sorted(available_seek_planners()):
        r = timed_open_run("serial-fcfs", rate, arrivals, seek_planner=name)
        raw_sojourn[name] = r.result.mean_sojourn_s
        runs[name] = {
            "events_processed": r.events,
            "wall_s": round(r.wall_s, 4),
            "events_per_s": round(r.events / r.wall_s),
            "mean_sojourn_s": round(r.result.mean_sojourn_s, 3),
        }
    # The default (planner=None) path is literally the greedy planner.
    assert runs["greedy-sweep"]["events_processed"] == baseline.events
    assert raw_sojourn["greedy-sweep"] == baseline.result.mean_sojourn_s

    payload = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "plan_price_us": {
            str(n): {name: round(p * 1e6, 2) for name, p in prices[n].items()}
            for n in sizes
        },
        "plan_price_ceiling_us": {
            "greedy-sweep": {str(n): GREEDY_PLAN_CEILING_US[n] for n in sizes},
            "exact": {str(n): EXACT_PLAN_CEILING_US[n] for n in sizes},
        },
        "open_runs": runs,
    }
    data = {}
    if BENCH_KERNEL_PATH.exists():
        data = json.loads(BENCH_KERNEL_PATH.read_text())
    data["seek_planners"] = payload
    BENCH_KERNEL_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nmerged into {BENCH_KERNEL_PATH}")

    for n in sizes:
        greedy_us = prices[n]["greedy-sweep"] * 1e6
        exact_us = prices[n]["exact"] * 1e6
        msg_g = (
            f"greedy-sweep plans {n} extents in {greedy_us:.1f} us "
            f"(ceiling {GREEDY_PLAN_CEILING_US[n]} us) — the default hot "
            "path got slower"
        )
        msg_e = (
            f"exact plans {n} extents in {exact_us:.1f} us "
            f"(ceiling {EXACT_PLAN_CEILING_US[n]} us) — the DP grew "
            "superquadratic?"
        )
        if quick:
            if greedy_us > GREEDY_PLAN_CEILING_US[n]:
                warnings.warn(msg_g, stacklevel=1)
            if exact_us > EXACT_PLAN_CEILING_US[n]:
                warnings.warn(msg_e, stacklevel=1)
        else:
            assert greedy_us <= GREEDY_PLAN_CEILING_US[n], msg_g
            assert exact_us <= EXACT_PLAN_CEILING_US[n], msg_e


# ---------------------------------------------------------------------------
# ISSUE 10: kernel scale-out — calendar-queue scheduler + library shards.

#: Hold-model floor: calendar queue vs heapq through the *generic*
#: scheduler interface at a 10-library-scale pending population (always
#: asserted at full scale regardless of core count; quick mode warns).
CALENDAR_SPEEDUP_FLOOR = 1.2
#: Shard-speedup floor at ``shard_workers=4`` (asserted on >= 4 cores
#: only, mirroring ``bench_sweep_parallel.py``; recorded regardless).
SHARD_SPEEDUP_FLOOR = 1.5
#: Steady-state pending-event population of the hold model.  Chosen well
#: past the measured crossover (~300-400k on the dev runner) where the
#: heap's O(log n) sift — by then memory-bound on a ~20-level pointer
#: chase — falls behind the calendar queue's O(1) bucket hop: the regime
#: a 10-library multi-million-request run lives in.  At 600k the ratio
#: still swings across the floor between process invocations (0.98-1.40x
#: measured); at 2M it holds 1.34-1.50x.  Deliberately NOT shrunk in
#: quick mode: a small population would flip the winner and make the
#: smoke run assert the opposite regime.
HOLD_POPULATION = 2_000_000


def _hold_model_rate(scheduler_cls, population, increments, seed=20060814):
    """Classic hold-model ops/sec: pop the minimum, push it back one
    exponential step later, at a steady ``population`` pending entries.

    Both schedulers run through ``type(sched).push/pop`` — the exact call
    shape of the environment's generic (non-heap) run loop — over
    identical preloaded entries and identical precomputed increments, so
    the ratio isolates scheduler data-structure cost.
    """
    import random
    from time import perf_counter

    rng = random.Random(seed)
    sched = scheduler_cls()
    push = type(sched).push
    pop = type(sched).pop
    eid = 0
    for _ in range(population):
        push(sched, (rng.random() * population, 1, eid, None))
        eid += 1
    start = perf_counter()
    for inc in increments:
        item = pop(sched)
        push(sched, (item[0] + inc, 1, eid, None))
        eid += 1
    return len(increments) / (perf_counter() - start)


def test_kernel_scale_gate(settings, quick):
    """10-library scale-out gates, merged into ``BENCH_kernel.json``.

    Three measurements: (1) hold-model throughput of calendar vs heapq at
    a large pending population (the asserted ``>= 1.2x`` scheduler gate —
    best-of-N interleaved rounds, since single-shot ratios on a shared
    runner swing by tens of percent); (2) one identical 10-library arrival
    stream end-to-end under each scheduler (recorded, plus a projected
    10M-request wall time); (3) the same stream at ``shard_workers=4``
    vs 1 (``>= 1.5x`` gate on >= 4-core hosts, recorded elsewhere).
    """
    import os
    import random
    from time import perf_counter

    from repro.des import CalendarQueue, HeapScheduler
    from repro.experiments import paper_workload
    from repro.placement import ParallelBatchPlacement
    from repro.sim import SimulationSession

    cpu_count = os.cpu_count() or 1

    # -- (1) hold-model scheduler gate ------------------------------------
    hold_ops = 20_000 if quick else 100_000
    hold_rounds = 1 if quick else 3
    rng = random.Random(7)
    increments = [rng.expovariate(1.0) for _ in range(hold_ops)]
    best = {"heapq": 0.0, "calendar": 0.0}
    for _ in range(hold_rounds):
        for name, cls in (("heapq", HeapScheduler), ("calendar", CalendarQueue)):
            best[name] = max(
                best[name], _hold_model_rate(cls, HOLD_POPULATION, increments)
            )
    hold_ratio = best["calendar"] / best["heapq"]

    # -- (2) end-to-end 10-library run per scheduler ----------------------
    rate, arrivals = 60.0, (40 if quick else 200)
    workload = paper_workload(settings)
    spec = settings.spec(num_libraries=10)
    session = SimulationSession(
        workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
    )

    def timed_run(scheduler=None, shard_workers=1):
        opensys = session.open(
            policy="concurrent", scheduler=scheduler, shard_workers=shard_workers
        )
        start = perf_counter()
        result = opensys.run(rate, num_arrivals=arrivals, seed=settings.eval_seed)
        return perf_counter() - start, opensys.env.events_processed, result

    e2e = {}
    results = {}
    for name in ("heapq", "calendar"):
        wall_s, events, result = timed_run(scheduler=name)
        results[name] = result
        events_per_s = events / wall_s
        e2e[name] = {
            "wall_s": round(wall_s, 4),
            "events_processed": events,
            "events_per_s": round(events_per_s),
            "mean_sojourn_s": round(result.mean_sojourn_s, 3),
            # Serial extrapolation to the ROADMAP's 10M-request target at
            # this events-per-request density.
            "projected_10m_requests_min": round(
                10e6 * (events / arrivals) / events_per_s / 60.0, 1
            ),
        }

    # -- (3) shard speedup at shard_workers=4 -----------------------------
    serial_wall, serial_events, serial_result = timed_run(shard_workers=1)
    sharded_wall, sharded_events, sharded_result = timed_run(shard_workers=4)
    shard_speedup = serial_wall / sharded_wall

    payload = {
        "scale": settings.scale,
        "cpu_count": cpu_count,
        "hold_model": {
            "population": HOLD_POPULATION,
            "ops": hold_ops,
            "rounds": hold_rounds,
            "heapq_ops_per_s": round(best["heapq"]),
            "calendar_ops_per_s": round(best["calendar"]),
            "calendar_speedup": round(hold_ratio, 3),
            "floor": CALENDAR_SPEEDUP_FLOOR,
        },
        "ten_library_open": {
            "rate_per_hour": rate,
            "num_arrivals": arrivals,
            "schedulers": e2e,
        },
        "shards": {
            "serial_wall_s": round(serial_wall, 4),
            "shard_workers_4_wall_s": round(sharded_wall, 4),
            "serial_events": serial_events,
            # Every shard re-derives the full arrival stream, so the
            # summed shard total exceeds the single-clock event count.
            "shard_events_total": sharded_events,
            "speedup": round(shard_speedup, 3),
            "floor": SHARD_SPEEDUP_FLOOR,
            "floor_asserted": cpu_count >= 4,
        },
    }
    data = {}
    if BENCH_KERNEL_PATH.exists():
        data = json.loads(BENCH_KERNEL_PATH.read_text())
    data["scale"] = payload
    BENCH_KERNEL_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nmerged into {BENCH_KERNEL_PATH}")

    # Scheduler choice and shard count are pure throughput knobs: the
    # simulations themselves must be bit-identical.
    assert results["heapq"].mean_sojourn_s == results["calendar"].mean_sojourn_s
    assert e2e["heapq"]["events_processed"] == e2e["calendar"]["events_processed"]
    # Shards re-derive the full arrival stream each, so summed shard
    # events exceed the single-clock count — identity is on the results.
    assert serial_result.mean_sojourn_s == sharded_result.mean_sojourn_s

    msg = (
        f"calendar queue only {hold_ratio:.2f}x over heapq at a "
        f"{HOLD_POPULATION:,}-event pending population "
        f"(floor {CALENDAR_SPEEDUP_FLOOR}x)"
    )
    if quick:
        if hold_ratio < CALENDAR_SPEEDUP_FLOOR:
            warnings.warn(msg, stacklevel=1)
    else:
        assert hold_ratio >= CALENDAR_SPEEDUP_FLOOR, msg

    if cpu_count >= 4:
        assert shard_speedup >= SHARD_SPEEDUP_FLOOR, (
            f"shard_workers=4 only {shard_speedup:.2f}x over serial on "
            f"{cpu_count} cores (floor {SHARD_SPEEDUP_FLOOR}x)"
        )
    else:
        pytest.skip(
            f"only {cpu_count} core(s): recorded shard speedup "
            f"{shard_speedup:.2f}x, {SHARD_SPEEDUP_FLOOR}x criterion "
            "needs >= 4 cores"
        )
