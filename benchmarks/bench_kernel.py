"""DES kernel throughput: events/sec, tracing on/off, and the perf gate.

Measures the event-processing rate of one identical open-system arrival
stream under each scheduling policy, with tracing enabled and disabled, and
writes ``BENCH_kernel.json`` at the repo root.  At paper scale the measured
rates gate against the *seed* kernel (the pre-fast-path numbers frozen
below): serial-fcfs must hold a >= 1.5x speedup and concurrent >= 1.3x, and
the enabled-tracing overhead on the concurrent stream is checked against
its 5% target.

Timing protocol: each (policy, tracing) cell is the *minimum* of several
alternating rounds — single-shot wall readings on a shared runner swing by
tens of percent, and the first (cold) round systematically penalizes
whichever mode runs first.  Throughput (events/sec) is wall-based.

The *gated* enabled-tracing overhead is micro-costed, mirroring how
``bench_trace_overhead.py`` bounds the disabled path: each instrumentation
path (inline fast-lane append, ``record`` call, ``SpanContext``) is priced
per call with ``timeit`` and multiplied by how often the enabled run hit
it.  Same-mode CPU time on a shared runner swings by ~20% between adjacent
identical runs, so differencing two end-to-end timings cannot resolve a
5% effect; the per-call prices are stable to a few percent.  The noisy
end-to-end paired-CPU delta is still recorded (``..._e2e_pct``) as a
sanity corroboration.  Quick mode (``--quick`` / ``REPRO_BENCH_QUICK``)
runs one small-scale round per cell and downgrades every absolute gate to a
soft warning so a CI smoke job cannot flake on machine noise.
"""

import json
import warnings
from collections import Counter
from pathlib import Path
from statistics import median
from timeit import timeit

from repro.des import Environment, Trace

BENCH_KERNEL_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Paper-scale events/sec of the seed kernel (``BENCH_opensystem.json``'s
#: ``open_system`` section as committed before the kernel fast path).
#: Deliberately frozen here: re-running the open-system bench overwrites
#: that file with post-optimization numbers, so the file itself cannot
#: serve as the regression baseline.
SEED_EVENTS_PER_S = {"serial-fcfs": 60326, "concurrent": 36174}

#: Minimum speedup over the seed kernel, per policy (the PR's perf gate).
SPEEDUP_FLOOR = {"serial-fcfs": 1.5, "concurrent": 1.3}

#: Enabled-tracing overhead target on the concurrent stream (percent), with
#: a generous hard ceiling above it so shared-runner noise warns, not fails.
ENABLED_OVERHEAD_TARGET_PCT = 5.0
ENABLED_OVERHEAD_CEILING_PCT = 12.0

#: Soft floor for quick (small-scale) smoke runs — generous on purpose.
QUICK_SOFT_FLOOR_EVENTS_PER_S = 5_000

#: Span names emitted through the engine's inline fast lane (id claim plus
#: one raw tuple append): the per-extent seek/transfer loop and the whole
#: switch tree (see ``sim/engine.py``).
GUARDED_SPANS = frozenset(
    {"seek", "transfer", "rewind", "unload", "robot_exchange", "robot_fetch", "load", "switch"}
)
#: Spans appended post-hoc through ``Trace.record``/``record_reserved``
#: (one plain function call per span).
RECORDED_SPANS = frozenset(
    {"robot_wait", "disk_wait", "dispatch_wait", "tape_job", "drive_failure"}
)


def _enabled_overhead_estimate(result, wall_off: float) -> float:
    """Micro-costed enabled-tracing overhead as a fraction of ``wall_off``.

    Prices each instrumentation path per call with ``timeit`` and charges
    it once per span the enabled run actually recorded.  Deterministic
    where an end-to-end on/off difference is not: adjacent identical runs
    on a shared runner differ by ~20% CPU, swamping a 5% effect.
    """
    trace = Trace(enabled=True)
    env = Environment()
    span_append = trace._spans.append

    def guarded() -> None:
        sid = trace._next_id
        trace._next_id = sid + 1
        started = env._now
        span_append((
            "seek", started, env._now,
            ("drive", "L0.D1", "object", 123), sid, 5, 7,
        ))

    def recorded() -> None:
        trace.record("tape_job", 0.0, 1.0, parent=3, request=7, drive="L0.D1")

    def spanned() -> None:
        with trace.span(env, "request", parent=3, request=7, policy="concurrent"):
            pass

    n = 20_000
    prices = {}
    for key, fn in (("guarded", guarded), ("recorded", recorded), ("spanned", spanned)):
        prices[key] = min(timeit(fn, number=n) for _ in range(3)) / n
        trace._spans.clear()
        trace._clean_upto = 0

    by_name = Counter(span.name for span in result.spans())
    counts = {
        "guarded": sum(c for name, c in by_name.items() if name in GUARDED_SPANS),
        "recorded": sum(c for name, c in by_name.items() if name in RECORDED_SPANS),
    }
    counts["spanned"] = sum(by_name.values()) - counts["guarded"] - counts["recorded"]
    est_s = sum(counts[key] * prices[key] for key in prices)
    return est_s / wall_off


def test_kernel_throughput_gate(settings, timed_open_run, quick, monkeypatch):
    rate = 8.0
    arrivals = 24 if quick else 60
    rounds = 1 if quick else 5

    def measure(policy):
        """Alternating on/off rounds: per-mode min wall + paired overhead.

        Throughput is each mode's minimum wall time.  The enabled-tracing
        overhead is the *median of per-round paired CPU deltas*: each round
        runs tracing on and off back-to-back, so frequency drift hits both
        runs of a pair about equally and cancels in the ratio — whereas
        differencing two independent per-mode minima lets one lucky round
        on either side swing the "overhead" by ±20 points.
        """
        on = off = None
        deltas = []
        for _ in range(rounds):
            monkeypatch.delenv("REPRO_TRACE", raising=False)
            r_on = timed_open_run(policy, rate, arrivals)
            on = r_on if on is None else on._replace(
                wall_s=min(on.wall_s, r_on.wall_s), cpu_s=min(on.cpu_s, r_on.cpu_s)
            )
            monkeypatch.setenv("REPRO_TRACE", "0")
            r_off = timed_open_run(policy, rate, arrivals)
            off = r_off if off is None else off._replace(
                wall_s=min(off.wall_s, r_off.wall_s), cpu_s=min(off.cpu_s, r_off.cpu_s)
            )
            deltas.append((r_on.cpu_s - r_off.cpu_s) / r_off.cpu_s)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        return on, off, median(deltas)

    payload = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "rounds_per_cell": rounds,
        "seed_baseline_events_per_s": SEED_EVENTS_PER_S,
        "speedup_floor": SPEEDUP_FLOOR,
        "enabled_overhead_target_pct": ENABLED_OVERHEAD_TARGET_PCT,
        "policies": {},
    }
    for policy in ("serial-fcfs", "concurrent"):
        on, off, e2e_overhead = measure(policy)

        # Tracing must not change the simulation itself.
        assert on.events == off.events
        assert on.spans > 0 and off.spans == 0

        overhead = _enabled_overhead_estimate(on.result, off.wall_s)

        payload["policies"][policy] = {
            "events_processed": on.events,
            "tracing_on": {
                "wall_s": round(on.wall_s, 4),
                "cpu_s": round(on.cpu_s, 4),
                "events_per_s": round(on.events / on.wall_s),
                "spans_recorded": on.spans,
            },
            "tracing_off": {
                "wall_s": round(off.wall_s, 4),
                "cpu_s": round(off.cpu_s, 4),
                "events_per_s": round(off.events / off.wall_s),
            },
            "enabled_overhead_pct": round(overhead * 100, 2),
            "enabled_overhead_e2e_pct": round(e2e_overhead * 100, 2),
            "speedup_vs_seed": (
                round(on.events / on.wall_s / SEED_EVENTS_PER_S[policy], 2)
                if settings.scale == "paper"
                else None
            ),
        }

    BENCH_KERNEL_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nwritten to {BENCH_KERNEL_PATH}")

    if settings.scale != "paper":
        # Quick/small-scale smoke: soft floor only — warn, never flake.
        for policy, entry in payload["policies"].items():
            rate_on = entry["tracing_on"]["events_per_s"]
            if rate_on < QUICK_SOFT_FLOOR_EVENTS_PER_S:
                warnings.warn(
                    f"{policy}: {rate_on:,} events/s is below the "
                    f"{QUICK_SOFT_FLOOR_EVENTS_PER_S:,} soft floor "
                    "(slow runner, or a real kernel regression?)",
                    stacklevel=1,
                )
        return

    for policy, floor in SPEEDUP_FLOOR.items():
        speedup = payload["policies"][policy]["speedup_vs_seed"]
        assert speedup >= floor, (
            f"{policy}: {speedup}x over the seed kernel "
            f"({payload['policies'][policy]['tracing_on']['events_per_s']:,} vs "
            f"{SEED_EVENTS_PER_S[policy]:,} events/s) is under the {floor}x gate"
        )

    overhead = payload["policies"]["concurrent"]["enabled_overhead_pct"]
    assert overhead < ENABLED_OVERHEAD_CEILING_PCT, (
        f"enabled tracing costs {overhead}% of the concurrent run "
        f"(hard ceiling {ENABLED_OVERHEAD_CEILING_PCT}%)"
    )
    if overhead > ENABLED_OVERHEAD_TARGET_PCT:
        warnings.warn(
            f"enabled-tracing overhead {overhead}% exceeds the "
            f"{ENABLED_OVERHEAD_TARGET_PCT}% target (within the "
            f"{ENABLED_OVERHEAD_CEILING_PCT}% ceiling)",
            stacklevel=1,
        )
