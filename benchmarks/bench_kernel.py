"""DES kernel throughput: events/sec, tracing on/off, and the perf gate.

Measures the event-processing rate of one identical open-system arrival
stream under each scheduling policy, with tracing enabled and disabled, and
writes ``BENCH_kernel.json`` at the repo root.  At paper scale the measured
rates gate against the *seed* kernel (the pre-fast-path numbers frozen
below): serial-fcfs must hold a >= 1.5x speedup and concurrent >= 1.3x, and
the enabled-tracing overhead on the concurrent stream is checked against
its 5% target.

Timing protocol: each (policy, tracing) cell is the *minimum* of several
alternating rounds — single-shot wall readings on a shared runner swing by
tens of percent, and the first (cold) round systematically penalizes
whichever mode runs first.  Throughput (events/sec) is wall-based.

The *gated* enabled-tracing overhead is micro-costed, mirroring how
``bench_trace_overhead.py`` bounds the disabled path: each instrumentation
path (inline fast-lane append, ``record`` call, ``SpanContext``) is priced
per call with ``timeit`` and multiplied by how often the enabled run hit
it.  Same-mode CPU time on a shared runner swings by ~20% between adjacent
identical runs, so differencing two end-to-end timings cannot resolve a
5% effect; the per-call prices are stable to a few percent.  The noisy
end-to-end paired-CPU delta is still recorded (``..._e2e_pct``) as a
sanity corroboration.  Quick mode (``--quick`` / ``REPRO_BENCH_QUICK``)
runs one small-scale round per cell and downgrades every absolute gate to a
soft warning so a CI smoke job cannot flake on machine noise.
"""

import json
import warnings
from collections import Counter
from pathlib import Path
from statistics import median
from timeit import timeit

from repro.des import Environment, Trace

BENCH_KERNEL_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Paper-scale events/sec of the seed kernel (``BENCH_opensystem.json``'s
#: ``open_system`` section as committed before the kernel fast path).
#: Deliberately frozen here: re-running the open-system bench overwrites
#: that file with post-optimization numbers, so the file itself cannot
#: serve as the regression baseline.
SEED_EVENTS_PER_S = {"serial-fcfs": 60326, "concurrent": 36174}

#: Minimum speedup over the seed kernel, per policy (the PR's perf gate).
SPEEDUP_FLOOR = {"serial-fcfs": 1.5, "concurrent": 1.3}

#: Enabled-tracing overhead target on the concurrent stream (percent), with
#: a generous hard ceiling above it so shared-runner noise warns, not fails.
ENABLED_OVERHEAD_TARGET_PCT = 5.0
ENABLED_OVERHEAD_CEILING_PCT = 12.0

#: Soft floor for quick (small-scale) smoke runs — generous on purpose.
QUICK_SOFT_FLOOR_EVENTS_PER_S = 5_000

#: Span names emitted through the engine's inline fast lane (id claim plus
#: one raw tuple append): the per-extent seek/transfer loop and the whole
#: switch tree (see ``sim/engine.py``).
GUARDED_SPANS = frozenset(
    {"seek", "transfer", "rewind", "unload", "robot_exchange", "robot_fetch", "load", "switch"}
)
#: Spans appended post-hoc through ``Trace.record``/``record_reserved``
#: (one plain function call per span).
RECORDED_SPANS = frozenset(
    {"robot_wait", "disk_wait", "dispatch_wait", "tape_job", "drive_failure"}
)


def _enabled_overhead_estimate(result, wall_off: float) -> float:
    """Micro-costed enabled-tracing overhead as a fraction of ``wall_off``.

    Prices each instrumentation path per call with ``timeit`` and charges
    it once per span the enabled run actually recorded.  Deterministic
    where an end-to-end on/off difference is not: adjacent identical runs
    on a shared runner differ by ~20% CPU, swamping a 5% effect.
    """
    trace = Trace(enabled=True)
    env = Environment()
    span_append = trace._spans.append

    def guarded() -> None:
        sid = trace._next_id
        trace._next_id = sid + 1
        started = env._now
        span_append((
            "seek", started, env._now,
            ("drive", "L0.D1", "object", 123), sid, 5, 7,
        ))

    def recorded() -> None:
        trace.record("tape_job", 0.0, 1.0, parent=3, request=7, drive="L0.D1")

    def spanned() -> None:
        with trace.span(env, "request", parent=3, request=7, policy="concurrent"):
            pass

    n = 20_000
    prices = {}
    for key, fn in (("guarded", guarded), ("recorded", recorded), ("spanned", spanned)):
        prices[key] = min(timeit(fn, number=n) for _ in range(3)) / n
        trace._spans.clear()
        trace._clean_upto = 0

    by_name = Counter(span.name for span in result.spans())
    counts = {
        "guarded": sum(c for name, c in by_name.items() if name in GUARDED_SPANS),
        "recorded": sum(c for name, c in by_name.items() if name in RECORDED_SPANS),
    }
    counts["spanned"] = sum(by_name.values()) - counts["guarded"] - counts["recorded"]
    est_s = sum(counts[key] * prices[key] for key in prices)
    return est_s / wall_off


def test_kernel_throughput_gate(settings, timed_open_run, quick, monkeypatch):
    rate = 8.0
    arrivals = 24 if quick else 60
    rounds = 1 if quick else 5

    def measure(policy):
        """Alternating on/off rounds: per-mode min wall + paired overhead.

        Throughput is each mode's minimum wall time.  The enabled-tracing
        overhead is the *median of per-round paired CPU deltas*: each round
        runs tracing on and off back-to-back, so frequency drift hits both
        runs of a pair about equally and cancels in the ratio — whereas
        differencing two independent per-mode minima lets one lucky round
        on either side swing the "overhead" by ±20 points.
        """
        on = off = None
        deltas = []
        for _ in range(rounds):
            monkeypatch.delenv("REPRO_TRACE", raising=False)
            r_on = timed_open_run(policy, rate, arrivals)
            on = r_on if on is None else on._replace(
                wall_s=min(on.wall_s, r_on.wall_s), cpu_s=min(on.cpu_s, r_on.cpu_s)
            )
            monkeypatch.setenv("REPRO_TRACE", "0")
            r_off = timed_open_run(policy, rate, arrivals)
            off = r_off if off is None else off._replace(
                wall_s=min(off.wall_s, r_off.wall_s), cpu_s=min(off.cpu_s, r_off.cpu_s)
            )
            deltas.append((r_on.cpu_s - r_off.cpu_s) / r_off.cpu_s)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        return on, off, median(deltas)

    payload = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "rounds_per_cell": rounds,
        "seed_baseline_events_per_s": SEED_EVENTS_PER_S,
        "speedup_floor": SPEEDUP_FLOOR,
        "enabled_overhead_target_pct": ENABLED_OVERHEAD_TARGET_PCT,
        "policies": {},
    }
    for policy in ("serial-fcfs", "concurrent"):
        on, off, e2e_overhead = measure(policy)

        # Tracing must not change the simulation itself.
        assert on.events == off.events
        assert on.spans > 0 and off.spans == 0

        overhead = _enabled_overhead_estimate(on.result, off.wall_s)

        payload["policies"][policy] = {
            "events_processed": on.events,
            "tracing_on": {
                "wall_s": round(on.wall_s, 4),
                "cpu_s": round(on.cpu_s, 4),
                "events_per_s": round(on.events / on.wall_s),
                "spans_recorded": on.spans,
            },
            "tracing_off": {
                "wall_s": round(off.wall_s, 4),
                "cpu_s": round(off.cpu_s, 4),
                "events_per_s": round(off.events / off.wall_s),
            },
            "enabled_overhead_pct": round(overhead * 100, 2),
            "enabled_overhead_e2e_pct": round(e2e_overhead * 100, 2),
            "speedup_vs_seed": (
                round(on.events / on.wall_s / SEED_EVENTS_PER_S[policy], 2)
                if settings.scale == "paper"
                else None
            ),
        }

    BENCH_KERNEL_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nwritten to {BENCH_KERNEL_PATH}")

    if settings.scale != "paper":
        # Quick/small-scale smoke: soft floor only — warn, never flake.
        for policy, entry in payload["policies"].items():
            rate_on = entry["tracing_on"]["events_per_s"]
            if rate_on < QUICK_SOFT_FLOOR_EVENTS_PER_S:
                warnings.warn(
                    f"{policy}: {rate_on:,} events/s is below the "
                    f"{QUICK_SOFT_FLOOR_EVENTS_PER_S:,} soft floor "
                    "(slow runner, or a real kernel regression?)",
                    stacklevel=1,
                )
        return

    for policy, floor in SPEEDUP_FLOOR.items():
        speedup = payload["policies"][policy]["speedup_vs_seed"]
        assert speedup >= floor, (
            f"{policy}: {speedup}x over the seed kernel "
            f"({payload['policies'][policy]['tracing_on']['events_per_s']:,} vs "
            f"{SEED_EVENTS_PER_S[policy]:,} events/s) is under the {floor}x gate"
        )

    overhead = payload["policies"]["concurrent"]["enabled_overhead_pct"]
    assert overhead < ENABLED_OVERHEAD_CEILING_PCT, (
        f"enabled tracing costs {overhead}% of the concurrent run "
        f"(hard ceiling {ENABLED_OVERHEAD_CEILING_PCT}%)"
    )
    if overhead > ENABLED_OVERHEAD_TARGET_PCT:
        warnings.warn(
            f"enabled-tracing overhead {overhead}% exceeds the "
            f"{ENABLED_OVERHEAD_TARGET_PCT}% target (within the "
            f"{ENABLED_OVERHEAD_CEILING_PCT}% ceiling)",
            stacklevel=1,
        )


#: Per-plan planning-price ceilings (microseconds) for the seek-planner
#: gate, by extent count.  Greedy guards the default hot path (``_serve_job``
#: plans once per tape visit, so its price rides every visit); exact's
#: ceiling only keeps the O(n^2) DP from quietly growing a cubic term.
#: Measured on the dev runner: greedy ~5/16/71 us, exact ~24/139/1471 us —
#: ceilings sit 4-10x above to absorb shared-runner noise.
GREEDY_PLAN_CEILING_US = {8: 60.0, 32: 160.0, 128: 700.0}
EXACT_PLAN_CEILING_US = {8: 600.0, 32: 3_000.0, 128: 15_000.0}


def _plan_prices(n_extents: int) -> dict:
    """Per-call planning price (seconds) of every registered planner on one
    random ``n_extents``-extent batch over an affine-startup tape spec."""
    import dataclasses
    import random

    from repro.hardware import SystemSpec
    from repro.sim import available_seek_planners, make_seek_planner
    from repro.sim.seekplan import ObjectExtent

    tape = dataclasses.replace(
        SystemSpec.table1().library.tape, locate_startup_s=4.0
    )
    rng = random.Random(20060814 + n_extents)
    extents = [
        ObjectExtent(object_id=i, start_mb=start / 100.0, size_mb=50.0)
        for i, start in enumerate(rng.sample(range(0, 190_000), n_extents))
    ]
    number = max(20, 2_000 // n_extents)
    prices = {}
    for name in available_seek_planners():
        planner = make_seek_planner(name)
        prices[name] = (
            min(
                timeit(lambda: planner.plan(extents, 500.0, tape), number=number)
                for _ in range(3)
            )
            / number
        )
    return prices


def test_seek_planner_gate(settings, timed_open_run, quick):
    """The planner registry stays off the default hot path.

    Three checks: (1) resolving no planner yields the shared greedy-sweep
    singleton, so the engine's per-visit planning cost is unchanged by the
    registry indirection; (2) per-plan micro prices — greedy under the
    hot-path ceiling, exact under its own (an O(n^2) sanity bound); (3) one
    end-to-end run per registered planner on the identical arrival stream,
    recorded to ``BENCH_kernel.json`` (read-modify-write: the throughput
    gate above overwrites the file, so this test must merge, not write).
    """
    from repro.sim import available_seek_planners, resolve_seek_planner

    default = resolve_seek_planner(None)
    assert default.name == "greedy-sweep"
    assert resolve_seek_planner(None) is default, (
        "resolve_seek_planner(None) must return a shared singleton — a "
        "fresh allocation per request would ride the admission path"
    )

    sizes = (8, 32) if quick else (8, 32, 128)
    prices = {n: _plan_prices(n) for n in sizes}

    rate, arrivals = 8.0, (24 if quick else 60)
    baseline = timed_open_run("serial-fcfs", rate, arrivals)
    runs = {}
    raw_sojourn = {}
    for name in sorted(available_seek_planners()):
        r = timed_open_run("serial-fcfs", rate, arrivals, seek_planner=name)
        raw_sojourn[name] = r.result.mean_sojourn_s
        runs[name] = {
            "events_processed": r.events,
            "wall_s": round(r.wall_s, 4),
            "events_per_s": round(r.events / r.wall_s),
            "mean_sojourn_s": round(r.result.mean_sojourn_s, 3),
        }
    # The default (planner=None) path is literally the greedy planner.
    assert runs["greedy-sweep"]["events_processed"] == baseline.events
    assert raw_sojourn["greedy-sweep"] == baseline.result.mean_sojourn_s

    payload = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "plan_price_us": {
            str(n): {name: round(p * 1e6, 2) for name, p in prices[n].items()}
            for n in sizes
        },
        "plan_price_ceiling_us": {
            "greedy-sweep": {str(n): GREEDY_PLAN_CEILING_US[n] for n in sizes},
            "exact": {str(n): EXACT_PLAN_CEILING_US[n] for n in sizes},
        },
        "open_runs": runs,
    }
    data = {}
    if BENCH_KERNEL_PATH.exists():
        data = json.loads(BENCH_KERNEL_PATH.read_text())
    data["seek_planners"] = payload
    BENCH_KERNEL_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\nmerged into {BENCH_KERNEL_PATH}")

    for n in sizes:
        greedy_us = prices[n]["greedy-sweep"] * 1e6
        exact_us = prices[n]["exact"] * 1e6
        msg_g = (
            f"greedy-sweep plans {n} extents in {greedy_us:.1f} us "
            f"(ceiling {GREEDY_PLAN_CEILING_US[n]} us) — the default hot "
            "path got slower"
        )
        msg_e = (
            f"exact plans {n} extents in {exact_us:.1f} us "
            f"(ceiling {EXACT_PLAN_CEILING_US[n]} us) — the DP grew "
            "superquadratic?"
        )
        if quick:
            if greedy_us > GREEDY_PLAN_CEILING_US[n]:
                warnings.warn(msg_g, stacklevel=1)
            if exact_us > EXACT_PLAN_CEILING_US[n]:
                warnings.warn(msg_e, stacklevel=1)
        else:
            assert greedy_us <= GREEDY_PLAN_CEILING_US[n], msg_g
            assert exact_us <= EXACT_PLAN_CEILING_US[n], msg_e
