"""F6 — Figure 6: effective bandwidth vs request popularity skew alpha.

Paper's shape: parallel batch on top at every alpha; parallel batch and
object probability improve as popularity skews (fewer tapes accumulate more
probability); cluster probability does not benefit from skew.
"""

from repro.experiments import figure6


def test_fig6_bandwidth_vs_alpha(run_once, settings):
    table = run_once(figure6, settings)
    print()
    print(table.format())

    series = table.data["series"]
    alphas = table.data["alphas"]
    pb = series["parallel_batch"]
    op = series["object_probability"]
    cp = series["cluster_probability"]

    # Parallel batch outperforms both baselines at every alpha (2% slack
    # for sampling noise where the curves converge at extreme skew).
    for i, a in enumerate(alphas):
        assert pb[i] >= 0.98 * op[i], f"alpha={a}: parallel batch loses to object prob"
        assert pb[i] >= 0.98 * cp[i], f"alpha={a}: parallel batch loses to cluster prob"

    # Skew helps the two probability-driven schemes...
    assert pb[-1] > pb[0]
    assert op[-1] > 1.1 * op[0]
    # ...but not cluster probability (paper: "does not have a big impact").
    assert cp[-1] < 1.1 * cp[0]

    # At the paper's operating point (alpha = 0.3) the win is strict.
    i03 = alphas.index(0.3)
    assert pb[i03] > op[i03]
    assert pb[i03] > cp[i03]
