"""F5 — Figure 5: effective bandwidth vs number of switch drives m.

Paper's shape: a jump from m=1 to m=2 (a single switch drive serializes all
switching), a maximum at moderate m (the exact peak depends on alpha), and
decline once the always-mounted batch becomes too small; bandwidth rises
with alpha.
"""

import numpy as np

from repro.experiments import figure5


def test_fig5_bandwidth_vs_switch_drives(run_once, settings):
    table = run_once(figure5, settings)
    print()
    print(table.format())

    series = table.data["series"]
    m_values = table.data["m_values"]

    for alpha, bandwidths in series.items():
        bw = dict(zip(m_values, bandwidths))
        # The m=1 -> m=2 jump (paper: "there is a jump").
        assert bw[2] > 1.15 * bw[1], f"alpha={alpha}: no m=1->2 jump"
        # m=1 is the global minimum.
        assert min(bw, key=bw.get) == 1, f"alpha={alpha}: m=1 not worst"
        # A moderate-m region beats or matches the extremes: the best m is
        # strictly inside [2, d-1) for at least the skewed curves.
        best_m = max(bw, key=bw.get)
        assert best_m >= 2

    # Bandwidth (at the paper's chosen m=4) increases with alpha.
    alphas = sorted(series)
    at_m4 = [series[a][m_values.index(4)] for a in alphas]
    assert at_m4[-1] > at_m4[0], "skew should raise bandwidth at m=4"

    # The decline past the peak appears for the most skewed curve
    # (paper: "after m goes beyond 4, the bandwidth decreases"; in our
    # reproduction the peak sits at m in 4..6 depending on alpha).
    steep = series[max(alphas)]
    peak_idx = int(np.argmax(steep))
    assert peak_idx < len(m_values) - 1, "no decline after the peak at high alpha"
