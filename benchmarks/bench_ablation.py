"""A1 — ablation: what each parallel-batch ingredient contributes.

Not a paper figure; quantifies the design choices DESIGN.md calls out
(Step-4 refinement, the Figure-3 zig-zag, Step-6 alignment, the pinned
always-mounted batch, shared-object detachment).
"""

from repro.experiments import ablation


def test_ablation_ingredients(run_once, settings):
    table = run_once(ablation, settings)
    print()
    print(table.format())

    bws = table.data["bandwidths"]
    full = bws["full scheme"]

    # No single ablation may *improve* the full scheme beyond noise — with
    # one documented exception: removing the hard pin frees d drives for
    # switching while the least-popular replacement policy already protects
    # the hot batch-0 tapes, so "no pinned batch" may gain a few percent
    # (see EXPERIMENTS.md, A1 discussion; the paper's own Figure 5 shows
    # bandwidth still rising past m=4 at mild skew, the same trade).
    for label, bw in bws.items():
        limit = 1.10 if "pinned" in label else 1.05
        assert bw <= limit * full, f"{label} beats the full scheme by too much"

    # The load-bearing ingredients cost real bandwidth when removed.
    assert bws["no cluster refinement (Step 4 off)"] < full
    assert bws["no shared-object detachment"] < 0.95 * full
