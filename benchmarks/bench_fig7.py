"""F7 — Figure 7: effective bandwidth vs average request size.

Paper's shape: bandwidth increases (but not dramatically) as requests grow —
transfer time accounts for a larger share while switch/seek stay roughly
constant; parallel batch remains on top across the tested range.
"""

from repro.experiments import figure7


def test_fig7_bandwidth_vs_request_size(run_once, settings):
    table = run_once(figure7, settings)
    print()
    print(table.format())

    series = table.data["series"]
    sizes = table.data["request_sizes_gb"]
    pb = series["parallel_batch"]

    # Monotone-ish increase for the proposed scheme: largest point clearly
    # above the smallest, and no catastrophic dips in between.
    assert pb[-1] > 1.15 * pb[0]
    for a, b in zip(pb, pb[1:]):
        assert b > 0.85 * a

    # "not dramatically": sub-linear in request size.
    growth = pb[-1] / pb[0]
    size_growth = sizes[-1] / sizes[0]
    assert growth < size_growth

    # Parallel batch stays on top across the tested range (2% noise slack).
    for i in range(len(sizes)):
        assert pb[i] >= 0.98 * series["object_probability"][i]
        assert pb[i] >= 0.98 * series["cluster_probability"][i]
