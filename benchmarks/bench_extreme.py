"""E1 — Sec. 6 prose: the all-mounted extreme case.

Object sizes are reduced until the n×d initially mounted tapes hold every
object, so no request ever pays a switch.  Paper: object probability gets
the lowest response (lowest seek); cluster probability's response is
transfer-dominated (~62%, serial reads) while parallel batch's is not
(~19%, maximally spread reads).
"""

from repro.experiments import extreme_case


def test_extreme_all_mounted(run_once, settings):
    table = run_once(extreme_case, settings)
    print()
    print(table.format())

    stats = table.data["stats"]
    pb = stats["parallel_batch"]
    op = stats["object_probability"]
    cp = stats["cluster_probability"]

    # Nobody switches: the whole working set is mounted.
    for s in stats.values():
        assert s["switches"] == 0
        assert abs(s["switch"]) < 1.0

    # Object probability: lowest response via lowest seek.
    assert op["response"] <= pb["response"]
    assert op["response"] <= cp["response"]
    assert op["seek"] <= pb["seek"]
    assert op["seek"] <= cp["seek"]

    # Transfer-boundedness contrast: cluster probability reads serially,
    # parallel batch spreads reads wide (paper: 62% vs 19%).
    assert cp["transfer_fraction"] > pb["transfer_fraction"]
