"""F9 — Figure 9: response-time component comparison (~160 GB requests).

Paper's shape: object probability pays the longest switch time (no
relationship awareness -> most switches) and it dominates its response;
object probability has the best transfer time; seek time is secondary for
all three; parallel batch balances the components and achieves the best
response time.
"""

from repro.experiments import figure9


def test_fig9_response_components(run_once, settings):
    table = run_once(figure9, settings)
    print()
    print(table.format())

    c = table.data["components"]
    pb, op, cp = c["parallel_batch"], c["object_probability"], c["cluster_probability"]

    # Components add up to the response (metric definition).
    for comp in c.values():
        total = comp["switch"] + comp["seek"] + comp["transfer"]
        assert abs(total - comp["response"]) < 1e-6 * comp["response"]

    # Object probability: worst switch time, and it dominates its response.
    assert op["switch"] > pb["switch"]
    assert op["switch"] > cp["switch"]
    assert op["switch"] > op["seek"] + op["transfer"] * 0.5

    # Object probability: best transfer time (maximum spread).
    assert op["transfer"] <= pb["transfer"]
    assert op["transfer"] < cp["transfer"]

    # Cluster probability: transfer-dominated (no parallelism).
    assert cp["transfer"] > 0.5 * cp["response"]

    # Seek is secondary: never the largest component.
    for comp in c.values():
        assert comp["seek"] < max(comp["switch"], comp["transfer"])

    # Parallel batch: best response time.
    assert pb["response"] < op["response"]
    assert pb["response"] < cp["response"]
