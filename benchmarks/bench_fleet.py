"""Fleet telemetry overhead: digests and snapshot merging must stay cheap.

The fleet pipeline adds two costs to every sweep point:

* **recording** — the four always-on latency digests in the open system
  (`latency.sojourn_s`/`seek_s`/`switch_s`/`transfer_s`) take one
  ``QuantileDigest.record`` call each per completed request;
* **aggregation** — at point end the worker exports its registry
  (``snapshot_of_result``) and the parent folds the snapshot into the
  :class:`~repro.obs.FleetRegistry`.

Both are priced micro-style (``timeit`` per-call cost × how often the real
run hits the path) against the CPU time of the same open-system run, the
same technique ``bench_trace_overhead.py`` uses — differencing two noisy
end-to-end timings would drown a ~1 % effect in scheduler noise.  The
acceptance bar is **< 5 %** for each component; results land in
``BENCH_fleet.json`` (uploaded as a CI artifact next to the dashboard).
"""

import json
from pathlib import Path
from timeit import timeit

from repro.obs import FleetRegistry, QuantileDigest, export_registry, snapshot_of_result

#: Repo-root JSON recording the fleet-telemetry overhead trajectory.
FLEET_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Digests the open system records into on every request completion.
_PER_REQUEST_DIGESTS = 4

#: Acceptance bar for each overhead component, as a fraction of run time.
_THRESHOLD = 0.05


def _write(section: str, payload: dict) -> Path:
    data = {}
    if FLEET_BENCH_PATH.exists():
        data = json.loads(FLEET_BENCH_PATH.read_text())
    data[section] = payload
    FLEET_BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return FLEET_BENCH_PATH


def test_fleet_telemetry_overhead(settings, timed_open_run, quick):
    run = timed_open_run("concurrent")
    completed = len(run.result.metrics)
    assert completed > 0

    n = 20_000 if quick else 100_000

    # --- per-record cost, on a digest pre-warmed to a realistic bin count.
    digest = QuantileDigest("bench.latency_s", unit="s")
    for sample in run.result.metrics:
        digest.record(max(0.0, sample.response_s))
    values = [max(0.0, s.response_s) for s in run.result.metrics] or [1.0]
    per_record_s = (
        timeit(lambda: [digest.record(v) for v in values], number=max(1, n // len(values)))
        / (max(1, n // len(values)) * len(values))
    )
    record_cost_s = per_record_s * _PER_REQUEST_DIGESTS * completed
    record_overhead = record_cost_s / run.cpu_s

    # --- per-point snapshot + fold cost, on the registry the run produced.
    snap_n = 50 if quick else 200
    per_snapshot_s = timeit(lambda: snapshot_of_result(run.result), number=snap_n) / snap_n
    snapshot = snapshot_of_result(run.result)
    fleet = FleetRegistry()
    per_fold_s = timeit(lambda: fleet.fold(snapshot), number=snap_n) / snap_n
    merge_overhead = (per_snapshot_s + per_fold_s) / run.cpu_s

    # Sanity: the fold loop above actually exercised the merge path.
    assert fleet.counter("requests.completed") >= completed

    payload = {
        "scale": settings.scale,
        "run_cpu_s": round(run.cpu_s, 4),
        "requests_completed": completed,
        "digest_bins": len(digest.bins),
        "per_record_us": round(per_record_s * 1e6, 4),
        "record_overhead_pct": round(record_overhead * 100, 4),
        "per_snapshot_ms": round(per_snapshot_s * 1e3, 4),
        "per_fold_ms": round(per_fold_s * 1e3, 4),
        "merge_overhead_pct": round(merge_overhead * 100, 4),
        "threshold_pct": _THRESHOLD * 100,
        "quick": quick,
    }
    path = _write("fleet_overhead", payload)
    print(
        f"\ndigest record ≈ {record_overhead:.3%} of the run, snapshot+fold "
        f"≈ {merge_overhead:.3%} per point (written to {path})"
    )

    assert record_overhead < _THRESHOLD, (
        f"digest recording costs {record_overhead:.2%} of the open-system run "
        f"(bar: {_THRESHOLD:.0%}): {completed} requests × {_PER_REQUEST_DIGESTS} "
        f"digests × {per_record_s * 1e6:.2f}µs over {run.cpu_s:.3f}s CPU"
    )
    assert merge_overhead < _THRESHOLD, (
        f"snapshot+fold costs {merge_overhead:.2%} of a sweep point "
        f"(bar: {_THRESHOLD:.0%}): {per_snapshot_s * 1e3:.2f}ms export + "
        f"{per_fold_s * 1e3:.2f}ms fold over {run.cpu_s:.3f}s CPU"
    )


def test_fold_order_insensitive_at_scale(quick):
    """The merge the whole pipeline rests on stays exact under volume."""
    import random

    rng = random.Random(13)
    snapshots = []
    n_points = 8 if quick else 32
    for i in range(n_points):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("requests.completed").inc(rng.randrange(1, 500))
        d = reg.digest("latency.sojourn_s", unit="s")
        for _ in range(rng.randrange(1, 400)):
            d.record(rng.lognormvariate(4.0, 1.5))
        snapshots.append(export_registry(reg))

    forward, backward = FleetRegistry(), FleetRegistry()
    for snap in snapshots:
        forward.fold(snap)
    for snap in reversed(snapshots):
        backward.fold(snap)

    fa, ba = forward.aggregates(), backward.aggregates()
    for name in fa["digests"]:
        da, db = dict(fa["digests"][name]), dict(ba["digests"][name])
        da.pop("sum"), db.pop("sum")
        assert da == db
    assert fa["counters"] == ba["counters"]
