"""Repair-subsystem armed overhead: media faults must cost ~nothing idle.

ISSUE 9 threads media-fault checks into the concurrent dispatcher's hot
path (a lost-tape guard on submit, repair-aware queue ordering in
``_try_assign``, wear accounting at job completion).  Arming the
subsystem without any media actually failing is the common case — a
fleet runs with repair *configured* for years between cartridge deaths —
so that configuration must not tax the fault-free stream.  This bench
runs the same arrival stream two ways:

* **baseline** — no fault specs at all: the serve path PR 8 shipped;
* **armed** — a :class:`~repro.sim.faults.TapeWearProcess` with an
  astronomical mean cycle count (no tape will ever die inside the
  horizon) plus an armed repair policy: every guard is live, no repair
  work exists.

The baseline-vs-armed CPU delta is the subsystem's standing overhead,
estimated as the median of paired per-round differences (scheduler blips
hit one pair, not the median) and held to the ISSUE's <5 % acceptance
bar.  Results land in ``BENCH_repair.json`` at the repo root (uploaded
as a CI artifact).
"""

import json
from pathlib import Path
from time import perf_counter, process_time

from repro.experiments import paper_workload
from repro.placement import ParallelBatchPlacement
from repro.sim import SimulationSession, TapeWearProcess

BENCH_REPAIR_PATH = Path(__file__).resolve().parent.parent / "BENCH_repair.json"

#: Mean mount/seek cycles before wear-out — ~1e12 cycles keeps every
#: Weibull draw astronomically beyond any simulated horizon, so the armed
#: run does exactly zero repair work.  (A ``TapeFailure`` would not do
#: here: its one-shot timeout at ``at_s`` would extend the environment's
#: event horizon; the wear process only piggybacks on job completions.)
IDLE_MEAN_CYCLES = 1e12


def _one_run(workload, spec, settings, armed, rate=8.0, num_arrivals=250):
    """(wall, cpu, result) for one open-system stream (placement untimed)."""
    session = SimulationSession(
        workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
    )
    if armed:
        opensys = session.open(
            policy="concurrent",
            faults=(TapeWearProcess(mean_cycles=IDLE_MEAN_CYCLES),),
            fault_seed=settings.eval_seed,
            repair_policy="fair-share",
        )
    else:
        opensys = session.open(policy="concurrent")
    start = perf_counter()
    cpu_start = process_time()
    result = opensys.run(rate, num_arrivals=num_arrivals, seed=settings.eval_seed)
    return perf_counter() - start, process_time() - cpu_start, result


def test_armed_media_fault_overhead(settings, quick):
    workload = paper_workload(settings)
    spec = settings.spec()
    rounds = 3 if quick else 9
    num_arrivals = 120 if quick else 250

    # One untimed warm-up pair, then interleaved baseline/armed pairs.
    _one_run(workload, spec, settings, False, num_arrivals=num_arrivals)
    _one_run(workload, spec, settings, True, num_arrivals=num_arrivals)
    diffs_pct = []
    baseline_s = armed_s = float("inf")
    baseline_wall = armed_wall = float("inf")
    baseline = armed = None
    for _ in range(rounds):
        wall, cpu, baseline = _one_run(
            workload, spec, settings, False, num_arrivals=num_arrivals
        )
        base_cpu = cpu
        baseline_s = min(baseline_s, cpu)
        baseline_wall = min(baseline_wall, wall)
        wall, cpu, armed = _one_run(
            workload, spec, settings, True, num_arrivals=num_arrivals
        )
        armed_s = min(armed_s, cpu)
        armed_wall = min(armed_wall, wall)
        diffs_pct.append(100.0 * (cpu - base_cpu) / base_cpu)

    # Arming must not perturb the simulation: no tape died, no object was
    # lost, and the per-request timeline matches the fault-free run.
    assert armed.faults["tape_losses"] == 0
    assert armed.objects_lost == 0
    assert armed.repair["members_rebuilt"] == 0
    assert [r.finish_s for r in armed.records] == [
        r.finish_s for r in baseline.records
    ]

    overhead_pct = sorted(diffs_pct)[len(diffs_pct) // 2]
    payload = {
        "scale": settings.scale,
        "num_arrivals": num_arrivals,
        "rate_per_hour": 8.0,
        "rounds": rounds,
        "baseline_cpu_s": round(baseline_s, 4),
        "armed_cpu_s": round(armed_s, 4),
        "baseline_wall_s": round(baseline_wall, 4),
        "armed_wall_s": round(armed_wall, 4),
        "armed_overhead_pct": round(overhead_pct, 2),
        "repair_policy": "fair-share",
    }
    BENCH_REPAIR_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\narmed media-fault overhead: {overhead_pct:+.2f}% "
          f"({baseline_s:.3f}s -> {armed_s:.3f}s over {rounds} rounds)")

    # The ISSUE's acceptance bar: arming repair with no media fault
    # occurring costs <5 % of the fault-free serve path.
    assert overhead_pct < 5.0
