"""A8 — degraded operation: graceful bandwidth loss under drive failures.

Not a paper artifact: a production archive must keep serving restores when
drives die.  Every library loses its k highest-numbered drives (for
parallel batch those are the switch drives) and all requested bytes must
still arrive through the survivors.

A policy artifact worth knowing: parallel batch degrades *non-monotonically*.
At k=2 the two surviving switch drives carry the full switch load while the
four pinned drives sit idle; at k=4 no designated switch drive survives, the
last-resort rule drafts the pinned drives, and bandwidth *recovers* — hard
pinning, not hardware, was the bottleneck (cf. the A1 pinning ablation).
"""

from repro.experiments import degraded


def test_degraded_operation(run_once, settings):
    table = run_once(degraded, settings)
    print()
    print(table.format())

    series = table.data["series"]
    ks = table.data["failed_per_library"]
    k4 = ks.index(4)

    # The unpinned schemes degrade monotonically (2% noise slack).
    for name in ("object_probability", "cluster_probability"):
        values = series[name]
        for a, b in zip(values, values[1:]):
            assert b <= a * 1.02, f"{name}: bandwidth rose with more failures"

    # Every scheme keeps serving and degrades gracefully: losing half the
    # drives costs far less than half the bandwidth (the robot arm, not the
    # drive count, is the bottleneck).
    for name, values in series.items():
        assert values[k4] > 0.4 * values[0], f"{name}: collapse at k=4"

    # The pinning artifact: parallel batch at k=4 (pinned drives drafted)
    # beats parallel batch at k=2 (pinned drives idle by policy).
    pb = series["parallel_batch"]
    assert pb[k4] > pb[ks.index(2)]

    # Healthy parallel batch still beats every degraded configuration of
    # itself.
    assert pb[0] == max(pb)
