"""A2 — incremental placement: the cost of local knowledge.

The paper's conclusion leaves open how to place objects that arrive
*periodically* with only local knowledge.  This experiment replays the
workload in three reveal epochs with append-only tapes and compares:

* omniscient re-placement (full scheme, global knowledge — upper bound);
* affinity append (our heuristic: new clusters follow their co-requested,
  already-placed peers when space permits);
* naive append (fill free space in batch order, no affinity).
"""

from repro.experiments import incremental


def test_incremental_placement(run_once, settings):
    table = run_once(incremental, settings)
    print()
    print(table.format())

    bws = table.data["bandwidths"]
    # Global knowledge is the upper bound; affinity recovers part of the gap.
    assert bws["omniscient re-placement"] >= 0.98 * bws["affinity append"]
    assert bws["affinity append"] >= 0.95 * bws["naive append"]
    # The local-knowledge penalty is real but bounded (not a collapse).
    assert bws["affinity append"] >= 0.6 * bws["omniscient re-placement"]
