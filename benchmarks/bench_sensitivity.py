"""E3 — Sec. 6 prose: workload-scale sensitivity.

"We have varied the total number of objects, the number of pre-defined
requests and the number of simulated requests, and found they do not change
the relative performance of the three schemes."
"""

from repro.experiments import sensitivity


def test_sensitivity_ranking_stable(run_once, settings):
    table = run_once(sensitivity, settings)
    print()
    print(table.format())

    # The proposed scheme wins under every variation.
    assert set(table.data["winners"]) == {"parallel_batch"}
