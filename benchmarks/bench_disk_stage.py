"""A4 — disk-stage bandwidth: validating the paper's assumption 6.

The paper assumes "the bottleneck of data transfer path lies at tape drive"
(Figure 1's staging disks are never the constraint).  Capping the disk
stage shows where that assumption holds: once the disk admits as many
streams as there are drives (24 × 80 MB/s = 1 920 MB/s), adding disk
bandwidth changes nothing; below that, the placement schemes' parallelism
advantage is throttled away.
"""

from repro.experiments import disk_stage


def test_disk_stage_cap(run_once, settings):
    table = run_once(disk_stage, settings)
    print()
    print(table.format())

    series = table.data["series"]
    # Throttled at the low end (mildly: switch time, not transfer, dominates
    # the response at this operating point, so a 6x disk cut costs ~15%)...
    assert series[0] < 0.92 * series[-1]
    # ...monotone non-decreasing with disk bandwidth (2% noise slack)...
    for a, b in zip(series, series[1:]):
        assert b >= 0.98 * a
    # ...and saturated once every drive has a stream (assumption 6).
    assert series[-2] >= 0.97 * series[-1]
