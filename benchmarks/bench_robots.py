"""A6 — what-if: more robot arms per library (assumption 5 relaxed).

The single arm serializes every mount/unmount within a library; it is the
reason Figure 5 has a trade-off at all.  Doubling the arms should help the
switch-heavy schemes most and leave switch-free service untouched.
"""

from repro.experiments import robots


def test_multi_robot_whatif(run_once, settings):
    table = run_once(robots, settings)
    print()
    print(table.format())

    series = table.data["series"]
    counts = table.data["robot_counts"]
    i1, ilast = counts.index(1), len(counts) - 1

    # More arms never hurt (1.5% noise slack).
    for name, values in series.items():
        for a, b in zip(values, values[1:]):
            assert b >= 0.985 * a, f"{name}: extra robot reduced bandwidth"

    # The switch-heaviest scheme (object probability, cf. Figure 9) gains
    # the largest relative improvement from a second arm.
    gains = {
        name: values[ilast] / values[i1] for name, values in series.items()
    }
    assert gains["object_probability"] >= gains["parallel_batch"] - 0.02
    assert gains["object_probability"] > 1.05  # a real gain, not noise
