"""Sweep-engine performance: process fan-out speedup and cache warm-up.

Times a reduced F5 sweep (small scale, 12 points) three ways — serial,
``workers=4``, and warm-cache — and records the trajectory in
``BENCH_sweeps.json`` at the repo root (uploaded as a CI artifact).

The >= 2x speedup criterion only holds where 4 workers have cores to run
on, so that assertion is gated on ``os.cpu_count() >= 4``; the honest
numbers are recorded either way.  The warm-cache criterion (< 10 % of the
cold wall time) is hardware-independent and always asserted.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import EngineOptions, ExperimentSettings, run_sweep
from repro.experiments.figures import figure5_spec

BENCH_SWEEPS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweeps.json"

M_VALUES = (1, 2, 4, 6)
ALPHAS = (0.0, 0.3, 1.0)


@pytest.fixture(scope="module")
def sweep_spec():
    return figure5_spec(
        ExperimentSettings(scale="small", num_samples=25),
        m_values=M_VALUES,
        alphas=ALPHAS,
    )


def merge_section(section: str, payload: dict) -> None:
    data = {}
    if BENCH_SWEEPS_PATH.exists():
        data = json.loads(BENCH_SWEEPS_PATH.read_text())
    data[section] = payload
    BENCH_SWEEPS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def stat_summary(stats: dict) -> dict:
    return {
        "points": stats["points"],
        "workers": stats["workers"],
        "wall_s": round(stats["wall_s"], 4),
        "points_per_s": round(stats["points_per_s"], 3),
        "cache_hits": stats["cache_hits"],
        "cache_misses": stats["cache_misses"],
    }


def test_bench_sweep_workers_json(sweep_spec):
    cpu_count = os.cpu_count() or 1
    serial = run_sweep(sweep_spec, EngineOptions(workers=1))
    fanout = run_sweep(sweep_spec, EngineOptions(workers=4))
    speedup = serial.stats["wall_s"] / fanout.stats["wall_s"]

    merge_section(
        "workers",
        {
            "sweep": "fig5-small (4 m-values x 3 alphas)",
            "cpu_count": cpu_count,
            "serial": stat_summary(serial.stats),
            "workers4": stat_summary(fanout.stats),
            "speedup_w4_over_w1": round(speedup, 3),
        },
    )

    # Bit-identical results regardless of worker count (the tests enforce
    # this exhaustively; the bench re-checks on the benchmarked sweep).
    for a, b in zip(serial, fanout):
        assert a.result.avg_bandwidth_mb_s == b.result.avg_bandwidth_mb_s

    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"workers=4 only {speedup:.2f}x faster than serial on "
            f"{cpu_count} cores"
        )
    else:
        pytest.skip(
            f"only {cpu_count} core(s): recorded speedup {speedup:.2f}x, "
            "2x criterion needs >= 4 cores"
        )


def test_bench_sweep_cache_json(sweep_spec, tmp_path):
    opts = EngineOptions(workers=1, cache_dir=str(tmp_path))
    cold = run_sweep(sweep_spec, opts)
    warm = run_sweep(sweep_spec, opts)
    ratio = warm.stats["wall_s"] / cold.stats["wall_s"]

    merge_section(
        "cache",
        {
            "sweep": "fig5-small (4 m-values x 3 alphas)",
            "cold": stat_summary(cold.stats),
            "warm": stat_summary(warm.stats),
            "warm_over_cold": round(ratio, 4),
        },
    )

    assert cold.stats["cache_misses"] == len(sweep_spec)
    assert warm.stats["cache_hits"] == len(sweep_spec)
    assert ratio < 0.10, f"warm cache took {ratio:.1%} of the cold wall time"
    for a, b in zip(cold, warm):
        assert a.result.avg_bandwidth_mb_s == b.result.avg_bandwidth_mb_s
