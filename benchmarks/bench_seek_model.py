"""A9 — robustness of the conclusions to the positioning model.

The paper computes seeks with a pure linear model; real drives also pay a
per-positioning startup cost (Johnson & Miller).  Adding an affine startup
penalizes seek-heavy layouts, so if the paper's conclusions depended on the
zero-startup assumption, the ranking would flip here.  It does not.
"""

from repro.experiments import seek_model


def test_seek_model_robustness(run_once, settings):
    table = run_once(seek_model, settings)
    print()
    print(table.format())

    # The winner is parallel batch under every positioning model.
    assert set(table.data["winners"]) == {"parallel_batch"}

    # Startup cost hurts everyone monotonically (2% noise slack).
    for name, values in table.data["series"].items():
        for a, b in zip(values, values[1:]):
            assert b <= a * 1.02, f"{name}: bandwidth rose with extra seek cost"
