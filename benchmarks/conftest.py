"""Shared fixtures for the benchmark suite.

Benchmarks run the paper-scale experiments (30 000 objects, Table-1 system,
200 sampled requests) unless overridden:

* ``REPRO_SCALE=small`` — ~10x smaller workload and tapes;
* ``REPRO_SAMPLES=N``  — sampled requests per configuration.

Each ``bench_*`` file regenerates one row of DESIGN.md §3's experiment
index, prints the table the paper's figure reports, and asserts the
reproduced *shape* (who wins, where curves peak, which component dominates).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import default_settings

#: Repo-root JSON where open-system benches record the perf trajectory
#: (wall time, events/sec, tracing overhead); uploaded as a CI artifact.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_opensystem.json"


@pytest.fixture(scope="session")
def settings():
    return default_settings()


@pytest.fixture(scope="session")
def bench_json():
    """Merge one named section into ``BENCH_opensystem.json``."""

    def merge(section: str, payload: dict) -> Path:
        data = {}
        if BENCH_JSON_PATH.exists():
            data = json.loads(BENCH_JSON_PATH.read_text())
        data[section] = payload
        BENCH_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return BENCH_JSON_PATH

    return merge


@pytest.fixture(scope="session")
def timed_open_run(settings):
    """Run one open-system arrival stream under a wall-clock timer.

    Workload generation and placement happen outside the timed region, so
    the measurement isolates the DES engine (arrivals, scheduling, spans).
    Returns ``(wall_s, events_processed, num_spans, result)``.
    """

    def run(policy: str, rate_per_hour: float = 8.0, num_arrivals: int = 60):
        from time import perf_counter

        from repro.experiments import paper_workload
        from repro.placement import ParallelBatchPlacement
        from repro.sim import SimulationSession

        workload = paper_workload(settings)
        spec = settings.spec()
        session = SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
        )
        opensys = session.open(policy=policy)
        start = perf_counter()
        result = opensys.run(rate_per_hour, num_arrivals=num_arrivals, seed=settings.eval_seed)
        wall_s = perf_counter() - start
        return wall_s, opensys.env.events_processed, len(result.spans()), result

    return run


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Experiment drivers are deterministic and expensive; one timed round is
    both the measurement and the result used for shape assertions.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
