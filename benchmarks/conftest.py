"""Shared fixtures for the benchmark suite.

Benchmarks run the paper-scale experiments (30 000 objects, Table-1 system,
200 sampled requests) unless overridden:

* ``REPRO_SCALE=small`` — ~10x smaller workload and tapes;
* ``REPRO_SAMPLES=N``  — sampled requests per configuration.

Each ``bench_*`` file regenerates one row of DESIGN.md §3's experiment
index, prints the table the paper's figure reports, and asserts the
reproduced *shape* (who wins, where curves peak, which component dominates).
"""

import pytest

from repro.experiments import default_settings


@pytest.fixture(scope="session")
def settings():
    return default_settings()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Experiment drivers are deterministic and expensive; one timed round is
    both the measurement and the result used for shape assertions.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
