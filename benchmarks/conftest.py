"""Shared fixtures for the benchmark suite.

Benchmarks run the paper-scale experiments (30 000 objects, Table-1 system,
200 sampled requests) unless overridden:

* ``REPRO_SCALE=small`` — ~10x smaller workload and tapes;
* ``REPRO_SAMPLES=N``  — sampled requests per configuration;
* ``--quick`` / ``REPRO_BENCH_QUICK=1`` — quick mode: force the small
  scale and let timing benches drop to one round / fewer arrivals, so a CI
  smoke job can run the suite in minutes (see the ``quick`` fixture).

Each ``bench_*`` file regenerates one row of DESIGN.md §3's experiment
index, prints the table the paper's figure reports, and asserts the
reproduced *shape* (who wins, where curves peak, which component dominates).
"""

import json
import os
from pathlib import Path
from typing import NamedTuple

import pytest

from repro.experiments import default_settings

#: Repo-root JSON where open-system benches record the perf trajectory
#: (wall time, events/sec, tracing overhead); uploaded as a CI artifact.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_opensystem.json"

_FALSY = {"", "0", "false", "off", "no"}


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="quick benchmark mode: small scale, fewer timing rounds "
        "(equivalent to REPRO_BENCH_QUICK=1)",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True in quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``).

    Quick mode exists for CI smoke jobs: ``settings`` drops to the small
    scale (overriding ``REPRO_SCALE``) and timing benches shrink their
    round/arrival counts.  Shape assertions still run; absolute-throughput
    gates become soft warnings (small-scale numbers are not comparable to
    the paper-scale baselines).
    """
    return bool(
        request.config.getoption("--quick")
        or os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() not in _FALSY
    )


@pytest.fixture(scope="session")
def settings(quick):
    if quick:
        return default_settings(scale="small")
    return default_settings()


@pytest.fixture(scope="session")
def bench_json():
    """Merge one named section into ``BENCH_opensystem.json``."""

    def merge(section: str, payload: dict) -> Path:
        data = {}
        if BENCH_JSON_PATH.exists():
            data = json.loads(BENCH_JSON_PATH.read_text())
        data[section] = payload
        BENCH_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        return BENCH_JSON_PATH

    return merge


class TimedRun(NamedTuple):
    """One timed open-system run."""

    wall_s: float
    events: int
    spans: int
    result: object
    #: CPU seconds of the same run (``time.process_time``) — far less noisy
    #: than wall time on a shared runner, so overhead *comparisons* should
    #: difference this while throughput numbers stay wall-based.
    cpu_s: float


@pytest.fixture(scope="session")
def timed_open_run(settings):
    """Run one open-system arrival stream under a wall-clock + CPU timer.

    Workload generation and placement happen outside the timed region, so
    the measurement isolates the DES engine (arrivals, scheduling, spans).
    Returns a :class:`TimedRun`.
    """

    def run(
        policy: str,
        rate_per_hour: float = 8.0,
        num_arrivals: int = 60,
        seek_planner=None,
    ):
        from time import perf_counter, process_time

        from repro.experiments import paper_workload
        from repro.placement import ParallelBatchPlacement
        from repro.sim import SimulationSession

        workload = paper_workload(settings)
        spec = settings.spec()
        session = SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
        )
        opensys = session.open(policy=policy, seek_planner=seek_planner)
        start = perf_counter()
        cpu_start = process_time()
        result = opensys.run(rate_per_hour, num_arrivals=num_arrivals, seed=settings.eval_seed)
        cpu_s = process_time() - cpu_start
        wall_s = perf_counter() - start
        return TimedRun(
            wall_s, opensys.env.events_processed, len(result.spans()), result, cpu_s
        )

    return run


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Experiment drivers are deterministic and expensive; one timed round is
    both the measurement and the result used for shape assertions.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
