"""Fault-layer overhead: an armed-but-idle injector must cost ~nothing.

PR 4 threads fault hooks through the concurrent dispatcher's hot path
(transient gates before every mount/read, repair bookkeeping around every
worker interrupt).  The robustness layer is only free if those hooks
vanish when no fault fires: this bench runs the same paper-scale arrival
stream three ways —

* **baseline** — ``faults=None``: the dispatcher runs the exact pre-PR 4
  code path (``transients_armed`` stays False, no injector exists);
* **armed idle** — a :class:`DriveFaultProcess` with astronomical MTBF
  plus a zero-probability :class:`TransientFaults`: every hook is armed,
  no fault ever fires, and the DES event stream must be bit-identical to
  the baseline;
* **chaos** — a realistic MTBF/MTTR mix, recorded for the perf
  trajectory (not held to a bar: it does strictly more work).

The armed-idle wall-time delta is the fault layer's overhead and is held
to the ISSUE's <=5 % acceptance bar.  Results land in
``BENCH_faults.json`` at the repo root (uploaded as a CI artifact).
"""

import json
from pathlib import Path
from time import perf_counter

from repro.experiments import paper_workload
from repro.placement import ParallelBatchPlacement
from repro.sim import DriveFaultProcess, SimulationSession, TransientFaults

BENCH_FAULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Armed hooks, zero fires: MTBF far beyond any horizon, and transients
#: that roll the dice on every mount/read but (for any realizable draw
#: count) never fail.  probability=0.0 would skip arming the gates
#: entirely — the injector indexes only streams that can fire — so a
#: tiny positive probability keeps the per-operation hook in the timed
#: path, which is what this bench exists to bound.
IDLE_FAULTS = (
    DriveFaultProcess(mtbf_s=1e12, mttr_s=10.0),
    TransientFaults(probability=1e-12),
)

CHAOS_FAULTS = (DriveFaultProcess(mtbf_s=4 * 3600.0, mttr_s=1800.0),)


def _one_run(workload, spec, settings, faults, rate=8.0, num_arrivals=60):
    """Wall time for one open-system stream (placement untimed)."""
    session = SimulationSession(
        workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
    )
    opensys = session.open(policy="concurrent", faults=faults, fault_seed=0)
    start = perf_counter()
    result = opensys.run(rate, num_arrivals=num_arrivals, seed=settings.eval_seed)
    return perf_counter() - start, result


def test_armed_idle_overhead(settings):
    workload = paper_workload(settings)
    spec = settings.spec()

    # Interleave baseline/armed rounds so machine drift between rounds
    # cancels out of the min-of-N comparison instead of landing in it.
    baseline_s = armed_s = chaos_s = float("inf")
    baseline = armed = chaos = None
    for _ in range(5):
        wall, baseline = _one_run(workload, spec, settings, None)
        baseline_s = min(baseline_s, wall)
        wall, armed = _one_run(workload, spec, settings, IDLE_FAULTS)
        armed_s = min(armed_s, wall)
    for _ in range(2):
        wall, chaos = _one_run(workload, spec, settings, CHAOS_FAULTS)
        chaos_s = min(chaos_s, wall)

    # Idle hooks must not perturb the simulation: identical finish times.
    assert [r.finish_s for r in armed.records] == [
        r.finish_s for r in baseline.records
    ]
    assert armed.availability == 1.0
    assert armed.faults["drive_failures"] == 0
    assert armed.faults["transient_errors"] == 0

    # The chaos run actually exercised the recovery machinery.
    assert chaos.faults["drive_failures"] > 0
    assert 0.0 < chaos.availability <= 1.0

    overhead_pct = 100.0 * (armed_s - baseline_s) / baseline_s
    payload = {
        "scale": "paper",
        "num_arrivals": 60,
        "rate_per_hour": 8.0,
        "baseline_wall_s": round(baseline_s, 4),
        "armed_idle_wall_s": round(armed_s, 4),
        "armed_idle_overhead_pct": round(overhead_pct, 2),
        "chaos": {
            "wall_s": round(chaos_s, 4),
            "mtbf_h": 4.0,
            "mttr_h": 0.5,
            "drive_failures": chaos.faults["drive_failures"],
            "drive_repairs": chaos.faults["drive_repairs"],
            "availability": round(chaos.availability, 4),
            "aborted_requests": chaos.aborted_requests,
            "mean_sojourn_s": round(chaos.mean_sojourn_s, 2),
        },
    }
    BENCH_FAULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nfault layer armed-idle overhead: {overhead_pct:+.2f}% "
          f"({baseline_s:.3f}s -> {armed_s:.3f}s); chaos run {chaos_s:.3f}s")

    # The ISSUE's acceptance bar: armed-but-idle fault hooks cost <=5 %.
    assert overhead_pct <= 5.0
