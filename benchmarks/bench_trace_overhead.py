"""Tracing overhead: proving that spans cost nothing when switched off.

The span instrumentation threads through every hot stage of the engine
(``_serve_job``, ``_switch_to``, the dispatchers), so ``REPRO_TRACE=0``
must make it vanish: a disabled :class:`~repro.des.Trace` shadows
``span``/``record`` with no-op functions, and the per-extent seek/transfer
sites (the vast majority of spans) skip even that call behind one hoisted
bool.  This bench holds the claim to the <2 % acceptance bar on the
open-system workload.

Two measurements:

* **end-to-end** — the same arrival stream with tracing on vs off,
  alternating modes over several rounds and taking each mode's minimum
  wall time (a single-shot reading penalizes whichever mode runs first
  and cold).  Both runs process the *same DES events* (spans never
  schedule anything), so the delta is pure instrumentation cost.
* **micro** — the per-call cost of each disabled hot path (null span
  context, no-op record), multiplied by how often the enabled run hit it.
  This bounds the disabled overhead without differencing two noisy
  end-to-end timings.

Both land in ``BENCH_opensystem.json`` (section ``trace_overhead``).
"""

from collections import Counter
from statistics import median
from timeit import timeit

from repro.des import Environment, Trace

#: Spans whose call sites sit behind a hoisted ``trace.enabled`` bool in
#: the engine (the per-extent loop and the switch tree): with tracing off
#: they cost one branch, not a call.
_GUARDED = frozenset(
    {"seek", "transfer", "rewind", "unload", "robot_exchange", "robot_fetch", "load", "switch"}
)

#: Spans recorded post-hoc via ``record``/``record_reserved`` (plain no-op
#: function call when disabled); everything else is a ``with span`` context.
_RECORDED = frozenset(
    {"robot_wait", "disk_wait", "dispatch_wait", "drive_failure", "request", "tape_job"}
)


def test_trace_off_overhead(settings, timed_open_run, bench_json, quick, monkeypatch):
    rounds = 1 if quick else 3
    on = off = None
    deltas = []
    for _ in range(rounds):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        r_on = timed_open_run("concurrent")
        on = r_on if on is None else on._replace(
            wall_s=min(on.wall_s, r_on.wall_s), cpu_s=min(on.cpu_s, r_on.cpu_s)
        )
        monkeypatch.setenv("REPRO_TRACE", "0")
        r_off = timed_open_run("concurrent")
        off = r_off if off is None else off._replace(
            wall_s=min(off.wall_s, r_off.wall_s), cpu_s=min(off.cpu_s, r_off.cpu_s)
        )
        deltas.append((r_on.cpu_s - r_off.cpu_s) / r_off.cpu_s)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    wall_on, events_on, spans_on, result_on = on.wall_s, on.events, on.spans, on.result
    wall_off, events_off, spans_off = off.wall_s, off.events, off.spans

    # The simulation itself is identical either way.
    assert spans_on > 0 and spans_off == 0
    assert events_on == events_off

    # Per-call costs of the disabled hot paths.
    trace = Trace(enabled=False)
    env = Environment()

    def disabled_span() -> None:
        with trace.span(env, "switch", parent=3, request=7, drive="L0.D1"):
            pass

    n = 100_000
    per_span_s = timeit(disabled_span, number=n) / n
    per_record_s = (
        timeit(
            lambda: trace.record("robot_wait", 0.0, 1.0, parent=3, request=7, drive="L0.D1"),
            number=n,
        )
        / n
    )

    # One disabled call per span the enabled run recorded, priced by path.
    # The guarded seek/transfer sites reduce to a generator-local bool test
    # (no call at all), orders of magnitude below either price.
    by_name = Counter(span.name for span in result_on.spans())
    n_guarded = sum(c for name, c in by_name.items() if name in _GUARDED)
    n_recorded = sum(c for name, c in by_name.items() if name in _RECORDED)
    n_spanned = spans_on - n_guarded - n_recorded
    est_disabled_s = n_spanned * per_span_s + n_recorded * per_record_s
    overhead = est_disabled_s / wall_off
    # Median paired CPU delta: a wall difference between two sub-second
    # runs taken at different times is mostly scheduler noise, so each
    # round pairs on/off back-to-back and the drift cancels in the ratio.
    enabled_overhead = median(deltas)

    payload = {
        "scale": settings.scale,
        "wall_on_s": round(wall_on, 4),
        "wall_off_s": round(wall_off, 4),
        "events_processed": events_on,
        "spans_recorded_on": spans_on,
        "spans_guarded": n_guarded,
        "spans_via_context": n_spanned,
        "spans_via_record": n_recorded,
        "per_disabled_span_us": round(per_span_s * 1e6, 4),
        "per_disabled_record_us": round(per_record_s * 1e6, 4),
        "rounds": rounds,
        "disabled_overhead_pct": round(overhead * 100, 4),
        "enabled_overhead_pct": round(enabled_overhead * 100, 2),
        "threshold_pct": 2.0,
    }
    path = bench_json("trace_overhead", payload)
    print(
        f"\ntracing on {wall_on:.3f}s / off {wall_off:.3f}s; disabled "
        f"instrumentation ≈ {overhead:.3%} of the run (written to {path})"
    )

    assert overhead < 0.02, (
        f"disabled tracing costs {overhead:.2%} of the open-system run (bar: 2%): "
        f"{n_spanned} contexts × {per_span_s * 1e6:.2f}µs + "
        f"{n_recorded} records × {per_record_s * 1e6:.2f}µs over {wall_off:.3f}s"
    )
