"""A3/A10 — queueing extensions: placement quality under offered load.

The paper evaluates isolated requests (queueing time zero).  With a Poisson
restore stream served FCFS, a scheme's service-time advantage compounds:
shorter services drain the queue, so near saturation the *sojourn-time* gap
between schemes exceeds the bare response-time gap.

The open-system benchmark (A10) keeps the stream but drops the one-at-a-time
constraint: concurrent in-flight requests overlap across libraries and
drives, so sojourns can only improve over serial FCFS.
"""

import json

from repro.experiments import open_system, queueing


def test_queueing_under_load(run_once, settings):
    table = run_once(queueing, settings)
    print()
    print(table.format())

    series = table.data["series"]
    service = table.data["mean_service_s"]
    pb, op = series["parallel_batch"], series["object_probability"]

    # Sojourn grows with load for every scheme.
    for name, values in series.items():
        assert values[-1] > values[0], f"{name}: no queueing growth"

    # Parallel batch (faster service) has shorter sojourns at every rate.
    for i in range(len(pb)):
        assert pb[i] <= op[i] * 1.02

    # Amplification: at the highest rate the sojourn gap is at least as
    # large as the bare service-time gap.
    service_gap = service["object_probability"] / service["parallel_batch"]
    sojourn_gap = op[-1] / pb[-1]
    assert sojourn_gap >= 0.9 * service_gap


def test_open_system_concurrency(run_once, settings):
    table = run_once(open_system, settings)
    print()
    print(table.format())

    series = table.data["series"]
    serial, concurrent = series["serial-fcfs"], series["concurrent"]

    # Overlapping requests never lose to one-at-a-time service ...
    for i in range(len(serial)):
        assert concurrent[i] <= serial[i] * 1.02

    # ... and at the highest offered load the gap is strict: the queue is
    # long enough that some overlap always materializes.
    assert concurrent[-1] < serial[-1]
    assert table.data["peak_in_flight"][-1] >= 2


def test_bench_opensystem_json(settings, timed_open_run, bench_json):
    """Emit ``BENCH_opensystem.json``: the open-system perf trajectory.

    Wall time and DES events/sec for one identical arrival stream under
    each scheduling policy — the engine-throughput numbers CI archives so
    regressions show up as a trajectory, not an anecdote.
    """
    rate, arrivals = 8.0, 60
    section = {
        "scale": settings.scale,
        "rate_per_hour": rate,
        "num_arrivals": arrivals,
        "policies": {},
    }
    for policy in ("serial-fcfs", "concurrent"):
        wall_s, events, spans, result, _ = timed_open_run(policy, rate, arrivals)
        assert wall_s > 0 and events > 0
        section["policies"][policy] = {
            "wall_s": round(wall_s, 4),
            "events_processed": events,
            "events_per_s": round(events / wall_s),
            "spans_recorded": spans,
            "mean_sojourn_s": round(result.mean_sojourn_s, 2),
        }
    path = bench_json("open_system", section)
    print(f"\n{json.dumps(section, indent=2)}\nwritten to {path}")
