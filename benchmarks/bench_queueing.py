"""A3 — queueing extension: placement quality under offered load.

The paper evaluates isolated requests (queueing time zero).  With a Poisson
restore stream served FCFS, a scheme's service-time advantage compounds:
shorter services drain the queue, so near saturation the *sojourn-time* gap
between schemes exceeds the bare response-time gap.
"""

from repro.experiments import queueing


def test_queueing_under_load(run_once, settings):
    table = run_once(queueing, settings)
    print()
    print(table.format())

    series = table.data["series"]
    service = table.data["mean_service_s"]
    pb, op = series["parallel_batch"], series["object_probability"]

    # Sojourn grows with load for every scheme.
    for name, values in series.items():
        assert values[-1] > values[0], f"{name}: no queueing growth"

    # Parallel batch (faster service) has shorter sojourns at every rate.
    for i in range(len(pb)):
        assert pb[i] <= op[i] * 1.02

    # Amplification: at the highest rate the sojourn gap is at least as
    # large as the bare service-time gap.
    service_gap = service["object_probability"] / service["parallel_batch"]
    sojourn_gap = op[-1] / pb[-1]
    assert sojourn_gap >= 0.9 * service_gap
