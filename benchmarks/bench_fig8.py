"""F8 — Figure 8: effective bandwidth vs number of tape libraries.

Paper's shape: parallel batch and object probability scale well with the
library count; cluster probability improves from 1 to ~3 libraries (reduced
robot contention) but does not scale beyond — it has no transfer
parallelism.  Parallel batch is consistently best.
"""

from repro.experiments import figure8


def test_fig8_bandwidth_vs_libraries(run_once, settings):
    table = run_once(figure8, settings)
    print()
    print(table.format())

    series = table.data["series"]
    counts = table.data["library_counts"]
    pb = series["parallel_batch"]
    op = series["object_probability"]
    cp = series["cluster_probability"]

    i1, i3, ilast = counts.index(1), counts.index(3), len(counts) - 1

    # The two parallel schemes scale substantially 1 -> max libraries.
    assert pb[ilast] > 2.0 * pb[i1]
    assert op[ilast] > 2.0 * op[i1]

    # Cluster probability gains early (robot relief) then flattens: the
    # total 3 -> max gain is small compared to the parallel schemes'.
    assert cp[i3] > cp[i1]
    cp_tail_gain = cp[ilast] / cp[i3]
    pb_tail_gain = pb[ilast] / pb[i3]
    assert cp_tail_gain < pb_tail_gain
    assert cp_tail_gain < 1.35

    # Parallel batch consistently best (2% noise slack).
    for i in range(len(counts)):
        assert pb[i] >= 0.98 * op[i]
        assert pb[i] >= 0.98 * cp[i]
