"""E2 — Sec. 6 prose: improved tape technology.

The paper omits this figure "due to page limitations" but states: "In
general, our scheme improves more than the other two schemes for these
cases" (increased data transfer speed and tape capacity).
"""

from repro.experiments import tech_trends


def test_tech_trends(run_once, settings):
    table = run_once(tech_trends, settings)
    print()
    print(table.format())

    series = table.data["series"]
    configs = table.data["configs"]
    base = configs.index((1.0, 1.0))
    fastest = configs.index((4.0, 1.0))

    # Faster drives raise everyone's bandwidth.
    for name, bws in series.items():
        assert bws[fastest] > bws[base], f"{name} did not benefit from 4x drives"

    # Parallel batch gains at least as much as the baselines from the
    # 4x-rate upgrade (paper: "our scheme improves more").
    pb_gain = series["parallel_batch"][fastest] / series["parallel_batch"][base]
    op_gain = series["object_probability"][fastest] / series["object_probability"][base]
    cp_gain = series["cluster_probability"][fastest] / series["cluster_probability"][base]
    assert pb_gain >= 0.95 * op_gain
    assert pb_gain >= 0.95 * cp_gain

    # Parallel batch keeps the absolute lead in every configuration.
    for i in range(len(configs)):
        assert series["parallel_batch"][i] >= 0.98 * series["object_probability"][i]
        assert series["parallel_batch"][i] >= 0.98 * series["cluster_probability"][i]
