"""T1 — Table 1: configuration constants and derived timing validation."""

from repro.experiments import table1


def test_table1_specifications(run_once):
    table = run_once(table1)
    print()
    print(table.format())

    # Derived quantities of the linear positioning model stay within 10% of
    # the vendor-quoted figures (49 s average rewind exact; 68 s vs 72 s
    # first-file access).
    assert table.data["worst_derived_error"] < 0.10

    values = dict(zip(table.column("parameter"), table.column("value")))
    assert values["Average rewind time (s)"] == 49.0
    assert abs(values["Average file access time, first file (s)"] - 72.0) <= 5.0
